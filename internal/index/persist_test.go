package index

import (
	"testing"
	"time"

	"mithrilog/internal/storage"
)

func TestSaveLoadIndexRoundTrip(t *testing.T) {
	dev := storage.New(storage.Config{})
	ix := New(dev, Params{Buckets: 512, LeafEntries: 4, RootEntries: 4})
	for p := storage.PageID(0); p < 300; p++ {
		tok := "tok" + string(rune('a'+p%7))
		if err := ix.Add(tok, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.TakeSnapshot(time.Unix(1000, 0)); err != nil {
		t.Fatal(err)
	}
	// More adds after the snapshot, leaving partial buffers in memory.
	for p := storage.PageID(300); p < 320; p++ {
		if err := ix.Add("late", p); err != nil {
			t.Fatal(err)
		}
	}

	saved := ix.Save()
	dev2 := storage.New(storage.Config{})
	if err := dev2.Restore(dev.Snapshot()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(dev2, saved)
	if err != nil {
		t.Fatal(err)
	}

	// Every token's lookup must agree between the original and the loaded
	// index (including the unflushed in-memory state).
	for _, tok := range []string{"toka", "tokb", "tokc", "late"} {
		a, err := ix.Lookup(tok)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Lookup(tok)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Pages) != len(b.Pages) {
			t.Fatalf("%s: %d vs %d pages after load", tok, len(a.Pages), len(b.Pages))
		}
		for i := range a.Pages {
			if a.Pages[i] != b.Pages[i] {
				t.Fatalf("%s: page %d differs", tok, i)
			}
		}
	}
	// Snapshots and stats survive.
	if loaded.PagesBefore(time.Unix(1000, 0)) != ix.PagesBefore(time.Unix(1000, 0)) {
		t.Fatal("snapshot boundary lost")
	}
	if loaded.Stats() != ix.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", loaded.Stats(), ix.Stats())
	}
	// The loaded index accepts further adds.
	if err := loaded.Add("fresh", 999); err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Lookup("fresh")
	if err != nil || len(res.Pages) == 0 {
		t.Fatalf("post-load add: %v %v", res.Pages, err)
	}
}

func TestLoadIndexBucketMismatch(t *testing.T) {
	dev := storage.New(storage.Config{})
	ix := New(dev, Params{Buckets: 64})
	saved := ix.Save()
	saved.Params.Buckets = 128 // inconsistent with the bucket array
	if _, err := LoadIndex(storage.New(storage.Config{}), saved); err == nil {
		t.Fatal("bucket mismatch should fail")
	}
}
