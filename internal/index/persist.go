package index

import (
	"fmt"
	"time"

	"mithrilog/internal/storage"
)

// SavedIndex is the gob-serializable form of an Index's in-memory state
// (the in-storage nodes live in the device's pages and are serialized by
// the storage snapshot).
type SavedIndex struct {
	Params  Params
	Buckets []SavedBucket

	OpenLeafID    uint32
	OpenLeafBuf   []byte
	OpenLeafUsed  int
	OpenIndexID   uint32
	OpenIndexBuf  []byte
	OpenIndexUsed int

	Snapshots []SavedSnapshot
	HighData  uint32
	Stats     Stats
}

// SavedBucket serializes one hash bucket.
type SavedBucket struct {
	LeafBuf  []uint32
	RootBuf  []SavedRef
	Head     SavedRef
	Count    uint64
	HasState bool // false for untouched buckets (kept compact)
}

// SavedRef serializes a node reference.
type SavedRef struct {
	Page uint32
	Slot uint16
}

// SavedSnapshot serializes a time boundary.
type SavedSnapshot struct {
	UnixNano int64
	DataHigh uint32
}

func refToSaved(r nodeRef) SavedRef { return SavedRef{Page: uint32(r.page), Slot: r.slot} }
func savedToRef(s SavedRef) nodeRef {
	return nodeRef{page: storage.PageID(s.Page), slot: s.Slot}
}

// Save captures the index's in-memory state for serialization.
func (ix *Index) Save() *SavedIndex {
	s := &SavedIndex{
		Params:        ix.params,
		OpenLeafID:    uint32(ix.openLeafID),
		OpenLeafBuf:   append([]byte(nil), ix.openLeafBuf...),
		OpenLeafUsed:  ix.openLeafUsed,
		OpenIndexID:   uint32(ix.openIndexID),
		OpenIndexBuf:  append([]byte(nil), ix.openIndexBuf...),
		OpenIndexUsed: ix.openIndexUsed,
		HighData:      uint32(ix.highData),
		Stats:         ix.stats,
	}
	s.Buckets = make([]SavedBucket, len(ix.buckets))
	for i := range ix.buckets {
		b := &ix.buckets[i]
		if b.count == 0 && b.head.isNil() {
			continue
		}
		sb := SavedBucket{
			Head:     refToSaved(b.head),
			Count:    b.count,
			HasState: true,
		}
		for _, p := range b.leafBuf {
			sb.LeafBuf = append(sb.LeafBuf, uint32(p))
		}
		for _, r := range b.rootBuf {
			sb.RootBuf = append(sb.RootBuf, refToSaved(r))
		}
		s.Buckets[i] = sb
	}
	for _, snap := range ix.snapshots {
		s.Snapshots = append(s.Snapshots, SavedSnapshot{
			UnixNano: snap.Time.UnixNano(),
			DataHigh: uint32(snap.DataHigh),
		})
	}
	return s
}

// LoadIndex rebuilds an index from saved state on a restored device.
func LoadIndex(dev *storage.Device, s *SavedIndex) (*Index, error) {
	ix := New(dev, s.Params)
	if len(s.Buckets) != len(ix.buckets) {
		return nil, fmt.Errorf("index: saved %d buckets, params say %d", len(s.Buckets), len(ix.buckets))
	}
	for i := range s.Buckets {
		sb := &s.Buckets[i]
		if !sb.HasState {
			continue
		}
		b := &ix.buckets[i]
		b.count = sb.Count
		b.head = savedToRef(sb.Head)
		if len(sb.LeafBuf) > 0 || len(sb.RootBuf) > 0 {
			b.leafBuf = make([]storage.PageID, 0, ix.params.LeafEntries)
			b.rootBuf = make([]nodeRef, 0, ix.params.RootEntries)
			for _, p := range sb.LeafBuf {
				b.leafBuf = append(b.leafBuf, storage.PageID(p))
			}
			for _, r := range sb.RootBuf {
				b.rootBuf = append(b.rootBuf, savedToRef(r))
			}
		}
	}
	ix.openLeafID = storage.PageID(s.OpenLeafID)
	if len(s.OpenLeafBuf) > 0 {
		ix.openLeafBuf = append([]byte(nil), s.OpenLeafBuf...)
	}
	ix.openLeafUsed = s.OpenLeafUsed
	ix.openIndexID = storage.PageID(s.OpenIndexID)
	if len(s.OpenIndexBuf) > 0 {
		ix.openIndexBuf = append([]byte(nil), s.OpenIndexBuf...)
	}
	ix.openIndexUsed = s.OpenIndexUsed
	ix.highData = storage.PageID(s.HighData)
	ix.stats = s.Stats
	for _, snap := range s.Snapshots {
		ix.snapshots = append(ix.snapshots, Snapshot{
			Time:     time.Unix(0, snap.UnixNano),
			DataHigh: storage.PageID(snap.DataHigh),
		})
	}
	return ix, nil
}
