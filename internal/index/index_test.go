package index

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mithrilog/internal/storage"
)

func newTestIndex(t testing.TB, p Params) (*Index, *storage.Device) {
	t.Helper()
	dev := storage.New(storage.Config{})
	if p.Buckets == 0 {
		p.Buckets = 256
	}
	return New(dev, p), dev
}

func TestAddLookupSmall(t *testing.T) {
	ix, _ := newTestIndex(t, Params{})
	for p := storage.PageID(0); p < 10; p++ {
		if err := ix.Add("alpha", p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ix.Lookup("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) != 10 {
		t.Fatalf("pages = %v", res.Pages)
	}
	for i, p := range res.Pages {
		if p != storage.PageID(i) {
			t.Fatalf("pages not sorted: %v", res.Pages)
		}
	}
	// All in-memory: no storage traversal yet.
	if res.RootHops != 0 {
		t.Errorf("root hops %d before any flush", res.RootHops)
	}
}

func TestLookupNeverMisses(t *testing.T) {
	// The index is probabilistic (over-approximating) but must never lose
	// a (token, page) pair, across leaf/root flush boundaries.
	ix, _ := newTestIndex(t, Params{LeafEntries: 4, RootEntries: 4})
	want := make(map[string][]storage.PageID)
	tokens := []string{"a", "bb", "ccc", "dddd", "eeeee", "f1", "g2", "h3"}
	rng := rand.New(rand.NewSource(9))
	for p := storage.PageID(0); p < 500; p++ {
		tok := tokens[rng.Intn(len(tokens))]
		if err := ix.Add(tok, p); err != nil {
			t.Fatal(err)
		}
		want[tok] = append(want[tok], p)
	}
	for tok, pages := range want {
		res, err := ix.Lookup(tok)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[storage.PageID]bool, len(res.Pages))
		for _, p := range res.Pages {
			got[p] = true
		}
		for _, p := range pages {
			if !got[p] {
				t.Fatalf("token %q lost page %d", tok, p)
			}
		}
	}
}

func TestLookupAfterFlush(t *testing.T) {
	ix, _ := newTestIndex(t, Params{LeafEntries: 4, RootEntries: 4})
	for p := storage.PageID(0); p < 100; p++ {
		if err := ix.Add("tok", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Lookup("tok")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) < 100 {
		t.Fatalf("lost pages after flush: %d", len(res.Pages))
	}
	if res.RootHops == 0 {
		t.Error("expected storage traversal after flush")
	}
}

func TestTreeFanoutReducesHops(t *testing.T) {
	// 16x16 trees: ~256 pages per root hop. 2000 single-token adds should
	// take < 20 hops, where a 16-entry naive list would take ~125.
	ix, _ := newTestIndex(t, Params{})
	for p := storage.PageID(0); p < 2000; p++ {
		_ = ix.Add("hot", p)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Lookup("hot")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) < 2000 {
		t.Fatalf("pages %d", len(res.Pages))
	}
	// All adds for one token split across 2 buckets: ≥ 2000/256/2 hops per
	// bucket; total hops should be around 8, certainly < 20.
	if res.RootHops == 0 || res.RootHops > 20 {
		t.Fatalf("root hops = %d", res.RootHops)
	}
	if res.LeafReads == 0 {
		t.Fatal("no leaf reads")
	}
}

func TestTwoHashBalancing(t *testing.T) {
	// A very hot token's pages split across two buckets; each bucket ends
	// up with roughly half.
	ix, _ := newTestIndex(t, Params{Buckets: 1024})
	for p := storage.PageID(0); p < 1000; p++ {
		_ = ix.Add("hot", p)
	}
	a, b := ix.hash("hot")
	if a == b {
		t.Skip("hash collision in test configuration")
	}
	ca, cb := ix.buckets[a].count, ix.buckets[b].count
	if ca+cb != 1000 {
		t.Fatalf("counts %d + %d != 1000", ca, cb)
	}
	diff := int64(ca) - int64(cb)
	if diff < -1 || diff > 1 {
		t.Fatalf("unbalanced: %d vs %d", ca, cb)
	}
}

func TestBucketSharingOverApproximates(t *testing.T) {
	// Force both tokens into the same buckets (Buckets=1): lookup of one
	// returns the other's pages too — allowed (filter removes them), but
	// must include its own.
	ix, _ := newTestIndex(t, Params{Buckets: 1})
	_ = ix.Add("x", 1)
	_ = ix.Add("y", 2)
	res, err := ix.Lookup("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) != 2 {
		t.Fatalf("pages = %v", res.Pages)
	}
}

func TestEmptyTokenErrors(t *testing.T) {
	ix, _ := newTestIndex(t, Params{})
	if err := ix.Add("", 1); err != ErrTokenEmpty {
		t.Error("Add empty token should fail")
	}
	if _, err := ix.Lookup(""); err != ErrTokenEmpty {
		t.Error("Lookup empty token should fail")
	}
}

func TestLookupUnknownToken(t *testing.T) {
	ix, _ := newTestIndex(t, Params{})
	_ = ix.Add("known", 5)
	res, err := ix.Lookup("unknown-token-xyz")
	if err != nil {
		t.Fatal(err)
	}
	// Probably empty (different buckets); never an error.
	_ = res
}

func TestSnapshots(t *testing.T) {
	ix, _ := newTestIndex(t, Params{})
	t0 := time.Date(2021, 10, 18, 0, 0, 0, 0, time.UTC)
	for p := storage.PageID(0); p < 50; p++ {
		_ = ix.Add("tok", p)
	}
	if err := ix.TakeSnapshot(t0); err != nil {
		t.Fatal(err)
	}
	for p := storage.PageID(50); p < 80; p++ {
		_ = ix.Add("tok", p)
	}
	if err := ix.TakeSnapshot(t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if got := ix.PagesBefore(t0); got != 50 {
		t.Fatalf("PagesBefore(t0) = %d", got)
	}
	if got := ix.PagesBefore(t0.Add(2 * time.Hour)); got != 80 {
		t.Fatalf("PagesBefore(+2h) = %d", got)
	}
	if got := ix.PagesBefore(t0.Add(-time.Hour)); got != 0 {
		t.Fatalf("PagesBefore(-1h) = %d", got)
	}
	if len(ix.Snapshots()) != 2 {
		t.Fatal("snapshot count")
	}
	// Lookups still complete after snapshot-forced flushes.
	res, err := ix.Lookup("tok")
	if err != nil || len(res.Pages) < 80 {
		t.Fatalf("lookup after snapshots: %d pages, %v", len(res.Pages), err)
	}
}

func TestMemoryFootprintSmall(t *testing.T) {
	ix, _ := newTestIndex(t, Params{Buckets: 4096})
	for p := storage.PageID(0); p < 5000; p++ {
		_ = ix.Add(fmt.Sprintf("tok%d", p%100), p)
	}
	fp := ix.MemoryFootprint()
	// Tree-of-lists keeps per-bucket buffers tiny: ≪ 1 MB at this scale.
	if fp > 1<<20 {
		t.Fatalf("footprint %d too large", fp)
	}
	if fp == 0 {
		t.Fatal("footprint not accounted")
	}
}

func TestSimulatedLookupTime(t *testing.T) {
	ix, dev := newTestIndex(t, Params{})
	for p := storage.PageID(0); p < 3000; p++ {
		_ = ix.Add("hot", p)
	}
	_ = ix.Flush()
	res, _ := ix.Lookup("hot")
	simt := ix.SimulatedLookupTime(res)
	if simt <= 0 {
		t.Fatal("no simulated time")
	}
	// Must be dominated by a handful of latency hops: well under 10ms.
	if simt > 10*time.Millisecond {
		t.Fatalf("sim time %v too large", simt)
	}
	_ = dev
}

func TestStatsProgress(t *testing.T) {
	ix, _ := newTestIndex(t, Params{LeafEntries: 4, RootEntries: 4})
	for p := storage.PageID(0); p < 200; p++ {
		_ = ix.Add("t", p)
	}
	st := ix.Stats()
	if st.Adds != 200 || st.LeafNodes == 0 || st.RootNodes == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQuickIndexNeverLoses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := storage.New(storage.Config{})
		ix := New(dev, Params{
			Buckets:     1 << uint(2+rng.Intn(6)),
			LeafEntries: 2 + rng.Intn(15),
			RootEntries: 2 + rng.Intn(15),
			Seed:        uint64(seed),
		})
		want := make(map[string]map[storage.PageID]bool)
		for p := storage.PageID(0); p < 300; p++ {
			tok := fmt.Sprintf("t%d", rng.Intn(20))
			if err := ix.Add(tok, p); err != nil {
				return false
			}
			if want[tok] == nil {
				want[tok] = make(map[storage.PageID]bool)
			}
			want[tok][p] = true
		}
		if rng.Intn(2) == 0 {
			if err := ix.Flush(); err != nil {
				return false
			}
		}
		for tok, pages := range want {
			res, err := ix.Lookup(tok)
			if err != nil {
				return false
			}
			got := make(map[storage.PageID]bool)
			for _, p := range res.Pages {
				got[p] = true
			}
			for p := range pages {
				if !got[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestListIndexBasic(t *testing.T) {
	dev := storage.New(storage.Config{})
	li := NewList(dev, ListParams{Buckets: 64, NodeEntries: 8})
	for p := storage.PageID(0); p < 100; p++ {
		if err := li.Add("tok", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := li.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := li.Lookup("tok")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) < 100 {
		t.Fatalf("pages %d", len(res.Pages))
	}
	if res.NodeHops < 10 {
		t.Fatalf("small nodes should need many hops, got %d", res.NodeHops)
	}
	if li.SimulatedLookupTime(res) <= 0 {
		t.Fatal("sim time missing")
	}
	if _, err := li.Lookup(""); err != ErrTokenEmpty {
		t.Error("empty token")
	}
	if err := li.Add("", 0); err != ErrTokenEmpty {
		t.Error("empty token add")
	}
}

func TestListIndexVsTreeTradeoff(t *testing.T) {
	// The §6.1 design argument, quantified: for the same ingest stream,
	// the naive list with node sizes big enough to saturate bandwidth uses
	// far more ingest memory than the tree; with small nodes it needs far
	// more dependent hops.
	dev1 := storage.New(storage.Config{})
	tree := New(dev1, Params{Buckets: 1024})
	dev2 := storage.New(storage.Config{})
	bigList := NewList(dev2, ListParams{Buckets: 1024, NodeEntries: 512})

	for p := storage.PageID(0); p < 5000; p++ {
		tok := fmt.Sprintf("t%d", p%200)
		_ = tree.Add(tok, p)
		_ = bigList.Add(tok, p)
	}
	if bigList.MemoryFootprint() < 4*tree.MemoryFootprint() {
		t.Fatalf("expected big-node list footprint to dominate: list=%d tree=%d",
			bigList.MemoryFootprint(), tree.MemoryFootprint())
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	dev := storage.New(storage.Config{})
	ix := New(dev, Params{})
	toks := make([]string, 256)
	for i := range toks {
		toks[i] = fmt.Sprintf("token-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Add(toks[i%256], storage.PageID(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	dev := storage.New(storage.Config{})
	ix := New(dev, Params{})
	for p := storage.PageID(0); p < 10000; p++ {
		_ = ix.Add(fmt.Sprintf("token-%d", p%50), p)
	}
	_ = ix.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Lookup(fmt.Sprintf("token-%d", i%50)); err != nil {
			b.Fatal(err)
		}
	}
}
