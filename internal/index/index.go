// Package index implements MithriLog's in-storage inverted index (§6): a
// probabilistic in-memory hash table indexed by two hash functions, backed
// by a linked list of height-two trees in storage pages.
//
// The in-memory table stores no tokens — only, per bucket, a small buffer
// of recent data page addresses, the storage reference of the newest tree
// root, and a page counter. Two hash functions spread hot tokens: each
// (token, page) insertion goes to whichever of the token's two buckets has
// seen fewer pages (§6.2), and queries read both buckets. Because buckets
// are shared between tokens, lookups over-approximate: they may return
// pages of other tokens hashing to the same buckets, which is harmless —
// the downstream filter engine discards non-matching lines (§6.2).
//
// In storage, each bucket owns a linked list of root nodes (in index
// pages); a root points at up to RootEntries leaf nodes (in leaf pages),
// each holding up to LeafEntries data page addresses. One latency-bound
// root visit therefore yields RootEntries×LeafEntries (256) data page
// addresses fetched in parallel, which saturates the device while keeping
// the per-bucket ingest buffer at LeafEntries addresses (§6.1).
package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"mithrilog/internal/hwsim"
	"mithrilog/internal/storage"
)

// Default geometry from the prototype (§6.1).
const (
	DefaultBuckets     = 1 << 16
	DefaultLeafEntries = hwsim.IndexLeafEntries
	DefaultRootEntries = hwsim.IndexRootEntries
)

// nilPage marks an absent page reference.
const nilPage = ^storage.PageID(0)

// ErrTokenEmpty reports an Add or Lookup with an empty token.
var ErrTokenEmpty = errors.New("index: empty token")

// Params sizes the index.
type Params struct {
	// Buckets is the in-memory hash table size (default 65536).
	Buckets int
	// LeafEntries is the number of data page addresses per leaf node
	// (default 16).
	LeafEntries int
	// RootEntries is the number of leaf references per root node
	// (default 16).
	RootEntries int
	// Seed perturbs the two hash functions.
	Seed uint64
}

func (p Params) withDefaults() Params {
	if p.Buckets <= 0 {
		p.Buckets = DefaultBuckets
	}
	if p.LeafEntries <= 0 {
		p.LeafEntries = DefaultLeafEntries
	}
	if p.RootEntries <= 0 {
		p.RootEntries = DefaultRootEntries
	}
	return p
}

// nodeRef addresses a node inside a storage page.
type nodeRef struct {
	page storage.PageID
	slot uint16
}

var nilRef = nodeRef{page: nilPage}

func (r nodeRef) isNil() bool { return r.page == nilPage }

// bucket is one in-memory hash table entry.
type bucket struct {
	// leafBuf holds data page addresses not yet flushed into a leaf node.
	leafBuf []storage.PageID
	// rootBuf holds leaf node references not yet flushed into a root node.
	rootBuf []nodeRef
	// head is the newest root node in storage (list head), or nil.
	head nodeRef
	// count is the total number of data pages pushed into this bucket,
	// used for the two-hash balancing decision.
	count uint64
}

// Snapshot records a time boundary for coarse-grained time-range queries
// (§6.3): all data pages with ID below DataHigh were ingested before Time.
type Snapshot struct {
	Time     time.Time
	DataHigh storage.PageID // first data page ID *not* covered
}

// Index is the inverted index. It is not safe for concurrent use; the
// ingest path is single-writer by design (append-only logs).
type Index struct {
	params  Params
	dev     *storage.Device
	buckets []bucket

	leafNodeSize int
	leafSlots    int
	rootNodeSize int
	rootSlots    int

	// Open (partially filled) storage pages, kept in memory until full.
	openLeafID    storage.PageID
	openLeafBuf   []byte
	openLeafUsed  int
	openIndexID   storage.PageID
	openIndexBuf  []byte
	openIndexUsed int

	snapshots []Snapshot
	highData  storage.PageID // highest data page ID seen + 1

	stats Stats
}

// Stats describes index activity and footprint.
type Stats struct {
	Adds       uint64 // (token, page) insertions
	LeafNodes  uint64 // leaf nodes written
	RootNodes  uint64 // root nodes written
	LeafPages  uint64 // leaf pages flushed
	IndexPages uint64 // index pages flushed
}

// New builds an empty index on the device.
func New(dev *storage.Device, p Params) *Index {
	p = p.withDefaults()
	ix := &Index{
		params:  p,
		dev:     dev,
		buckets: make([]bucket, p.Buckets),
	}
	for i := range ix.buckets {
		ix.buckets[i].head = nilRef
	}
	ix.leafNodeSize = 2 + 4*p.LeafEntries
	ix.leafSlots = storage.PageSize / ix.leafNodeSize
	ix.rootNodeSize = 2 + 6*p.RootEntries + 6
	ix.rootSlots = storage.PageSize / ix.rootNodeSize
	ix.openLeafID = nilPage
	ix.openIndexID = nilPage
	return ix
}

// Params returns the (defaulted) parameters.
func (ix *Index) Params() Params { return ix.params }

// Stats returns activity counters.
func (ix *Index) Stats() Stats { return ix.stats }

// MemoryFootprint estimates the resident bytes of the in-memory structures
// (the quantity §6 keeps near 256 MB for the full-scale prototype).
func (ix *Index) MemoryFootprint() int {
	per := 0
	for i := range ix.buckets {
		b := &ix.buckets[i]
		per += cap(b.leafBuf)*4 + cap(b.rootBuf)*8 + 24
	}
	return per + len(ix.openLeafBuf) + len(ix.openIndexBuf) + len(ix.buckets)*8
}

// hash returns the token's two bucket indices.
func (ix *Index) hash(token string) (int, int) { return hashToken(ix, token) }

// hashToken is the shared bucket-pair hash over string and []byte token
// views, so the ingest path never materializes a string just to hash it.
func hashToken[T string | []byte](ix *Index, token T) (int, int) {
	h1 := uint64(14695981039346656037) ^ ix.params.Seed
	for i := 0; i < len(token); i++ {
		h1 ^= uint64(token[i])
		h1 *= 1099511628211
	}
	h2 := h1*0x9e3779b97f4a7c15 + 0x165667b19e3779f9
	h1 = fmix(h1)
	h2 = fmix(h2)
	n := uint64(ix.params.Buckets)
	a, b := int(h1%n), int(h2%n)
	return a, b
}

func fmix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add records that token appears in the given data page. Callers must
// deduplicate (token, page) pairs — the ingest path calls Add once per
// distinct token per page.
func (ix *Index) Add(token string, page storage.PageID) error {
	if token == "" {
		return ErrTokenEmpty
	}
	a, b := ix.hash(token)
	// Push into the bucket with fewer pages so far (§6.2).
	target := a
	if ix.buckets[b].count < ix.buckets[a].count {
		target = b
	}
	ix.stats.Adds++
	if page+1 > ix.highData {
		ix.highData = page + 1
	}
	return ix.push(target, page)
}

// AddBytes is Add over a byte-slice token view. The index never stores
// tokens — only their bucket hashes — so the byte form avoids the
// per-token string conversion on the ingest hot path. Results are
// identical to Add(string(tok), page).
func (ix *Index) AddBytes(tok []byte, page storage.PageID) error {
	if len(tok) == 0 {
		return ErrTokenEmpty
	}
	a, b := hashToken(ix, tok)
	target := a
	if ix.buckets[b].count < ix.buckets[a].count {
		target = b
	}
	ix.stats.Adds++
	if page+1 > ix.highData {
		ix.highData = page + 1
	}
	return ix.push(target, page)
}

func (ix *Index) push(bi int, page storage.PageID) error {
	b := &ix.buckets[bi]
	b.count++
	if b.leafBuf == nil {
		// Reserve the full node buffer up front: this models the real
		// ingest memory cost of a partially filled node (§6.1).
		b.leafBuf = make([]storage.PageID, 0, ix.params.LeafEntries)
		b.rootBuf = make([]nodeRef, 0, ix.params.RootEntries)
	}
	b.leafBuf = append(b.leafBuf, page)
	if len(b.leafBuf) >= ix.params.LeafEntries {
		if err := ix.flushLeaf(b); err != nil {
			return err
		}
	}
	return nil
}

// flushLeaf writes the bucket's leaf buffer as a leaf node and registers
// it in the bucket's root buffer, flushing a root node if that fills too.
func (ix *Index) flushLeaf(b *bucket) error {
	if len(b.leafBuf) == 0 {
		return nil
	}
	ref, err := ix.appendLeafNode(b.leafBuf)
	if err != nil {
		return err
	}
	b.leafBuf = b.leafBuf[:0]
	b.rootBuf = append(b.rootBuf, ref)
	if len(b.rootBuf) >= ix.params.RootEntries {
		return ix.flushRoot(b)
	}
	return nil
}

// flushRoot writes the bucket's root buffer as a root node linked to the
// previous head.
func (ix *Index) flushRoot(b *bucket) error {
	if len(b.rootBuf) == 0 {
		return nil
	}
	ref, err := ix.appendRootNode(b.rootBuf, b.head)
	if err != nil {
		return err
	}
	b.rootBuf = b.rootBuf[:0]
	b.head = ref
	return nil
}

// appendLeafNode serializes a leaf node into the open leaf page.
func (ix *Index) appendLeafNode(pages []storage.PageID) (nodeRef, error) {
	if ix.openLeafID == nilPage || ix.openLeafUsed >= ix.leafSlots {
		if err := ix.rotateLeafPage(); err != nil {
			return nilRef, err
		}
	}
	slot := ix.openLeafUsed
	off := slot * ix.leafNodeSize
	buf := ix.openLeafBuf[off : off+ix.leafNodeSize]
	binary.LittleEndian.PutUint16(buf, uint16(len(pages)))
	for i, p := range pages {
		binary.LittleEndian.PutUint32(buf[2+4*i:], uint32(p))
	}
	ix.openLeafUsed++
	ix.stats.LeafNodes++
	return nodeRef{page: ix.openLeafID, slot: uint16(slot)}, nil
}

// appendRootNode serializes a root node into the open index page.
func (ix *Index) appendRootNode(leaves []nodeRef, next nodeRef) (nodeRef, error) {
	if ix.openIndexID == nilPage || ix.openIndexUsed >= ix.rootSlots {
		if err := ix.rotateIndexPage(); err != nil {
			return nilRef, err
		}
	}
	slot := ix.openIndexUsed
	off := slot * ix.rootNodeSize
	buf := ix.openIndexBuf[off : off+ix.rootNodeSize]
	binary.LittleEndian.PutUint16(buf, uint16(len(leaves)))
	for i, r := range leaves {
		binary.LittleEndian.PutUint32(buf[2+6*i:], uint32(r.page))
		binary.LittleEndian.PutUint16(buf[2+6*i+4:], r.slot)
	}
	tail := 2 + 6*ix.params.RootEntries
	binary.LittleEndian.PutUint32(buf[tail:], uint32(next.page))
	binary.LittleEndian.PutUint16(buf[tail+4:], next.slot)
	ix.openIndexUsed++
	ix.stats.RootNodes++
	return nodeRef{page: ix.openIndexID, slot: uint16(slot)}, nil
}

func (ix *Index) rotateLeafPage() error {
	if ix.openLeafID != nilPage {
		if err := ix.dev.Write(ix.openLeafID, ix.openLeafBuf); err != nil {
			return err
		}
		ix.stats.LeafPages++
	}
	id, err := ix.dev.Alloc()
	if err != nil {
		return err
	}
	ix.openLeafID = id
	if ix.openLeafBuf == nil {
		ix.openLeafBuf = make([]byte, storage.PageSize)
	} else {
		for i := range ix.openLeafBuf {
			ix.openLeafBuf[i] = 0
		}
	}
	ix.openLeafUsed = 0
	return nil
}

func (ix *Index) rotateIndexPage() error {
	if ix.openIndexID != nilPage {
		if err := ix.dev.Write(ix.openIndexID, ix.openIndexBuf); err != nil {
			return err
		}
		ix.stats.IndexPages++
	}
	id, err := ix.dev.Alloc()
	if err != nil {
		return err
	}
	ix.openIndexID = id
	if ix.openIndexBuf == nil {
		ix.openIndexBuf = make([]byte, storage.PageSize)
	} else {
		for i := range ix.openIndexBuf {
			ix.openIndexBuf[i] = 0
		}
	}
	ix.openIndexUsed = 0
	return nil
}

// Flush forces all partial buffers into storage: every bucket's leaf and
// root buffers become (possibly short) nodes, and open pages are written
// out. Used before snapshots and at end of ingest.
func (ix *Index) Flush() error {
	for i := range ix.buckets {
		b := &ix.buckets[i]
		if err := ix.flushLeaf(b); err != nil {
			return err
		}
		if err := ix.flushRoot(b); err != nil {
			return err
		}
	}
	if ix.openLeafID != nilPage {
		if err := ix.dev.Write(ix.openLeafID, ix.openLeafBuf); err != nil {
			return err
		}
	}
	if ix.openIndexID != nilPage {
		if err := ix.dev.Write(ix.openIndexID, ix.openIndexBuf); err != nil {
			return err
		}
	}
	return nil
}

// TakeSnapshot flushes the in-memory table and records a time boundary:
// data pages ingested after this call have IDs >= the recorded high-water
// mark (§6.3).
func (ix *Index) TakeSnapshot(ts time.Time) error {
	if err := ix.Flush(); err != nil {
		return err
	}
	ix.snapshots = append(ix.snapshots, Snapshot{Time: ts, DataHigh: ix.highData})
	return nil
}

// Snapshots returns the recorded time boundaries in order.
func (ix *Index) Snapshots() []Snapshot { return ix.snapshots }

// PagesBefore returns the exclusive data-page high-water mark for the
// newest snapshot not after ts, or 0 if none (nothing ingested before ts).
func (ix *Index) PagesBefore(ts time.Time) storage.PageID {
	var hi storage.PageID
	for _, s := range ix.snapshots {
		if !s.Time.After(ts) && s.DataHigh > hi {
			hi = s.DataHigh
		}
	}
	return hi
}

// LookupResult carries a token's candidate data pages plus the simulated
// access profile of the traversal.
type LookupResult struct {
	// Pages is the sorted, deduplicated set of candidate data pages. It
	// over-approximates (bucket sharing), never under-approximates.
	Pages []storage.PageID
	// RootHops counts latency-bound, serially dependent root node visits.
	RootHops int
	// LeafReads counts leaf node reads (parallel within a root visit).
	LeafReads int
	// IndexPagesRead and LeafPagesRead count distinct storage pages
	// touched by the traversal.
	IndexPagesRead int
	LeafPagesRead  int
}

// BucketPages returns the total page count across the token's two
// buckets — an O(1) upper bound on how many candidate pages a Lookup
// would return. Query planners use it to skip traversals for unselective
// (stop-word-like) tokens, which cannot prune the page set anyway.
func (ix *Index) BucketPages(token string) uint64 {
	a, b := ix.hash(token)
	if a == b {
		return ix.buckets[a].count
	}
	return ix.buckets[a].count + ix.buckets[b].count
}

// Lookup returns the candidate pages for a token from both of its buckets.
func (ix *Index) Lookup(token string) (LookupResult, error) {
	if token == "" {
		return LookupResult{}, ErrTokenEmpty
	}
	a, b := ix.hash(token)
	var res LookupResult
	seenIdx := make(map[storage.PageID]bool)
	seenLeaf := make(map[storage.PageID]bool)
	var pages []storage.PageID
	for _, bi := range dedupe2(a, b) {
		bk := &ix.buckets[bi]
		// In-memory buffers first (newest data).
		pages = append(pages, bk.leafBuf...)
		for _, lr := range bk.rootBuf {
			lp, err := ix.readLeafNode(lr, seenLeaf, &res)
			if err != nil {
				return res, err
			}
			pages = append(pages, lp...)
		}
		// Then the storage linked list.
		for ref := bk.head; !ref.isNil(); {
			leaves, next, err := ix.readRootNode(ref, seenIdx, &res)
			if err != nil {
				return res, err
			}
			res.RootHops++
			for _, lr := range leaves {
				lp, err := ix.readLeafNode(lr, seenLeaf, &res)
				if err != nil {
					return res, err
				}
				pages = append(pages, lp...)
			}
			ref = next
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	res.Pages = dedupeSorted(pages)
	return res, nil
}

func dedupe2(a, b int) []int {
	if a == b {
		return []int{a}
	}
	return []int{a, b}
}

func dedupeSorted(pages []storage.PageID) []storage.PageID {
	if len(pages) == 0 {
		return pages
	}
	out := pages[:1]
	for _, p := range pages[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// readPage reads an index/leaf page, transparently serving the open
// (not-yet-flushed) pages from their memory buffers. Index traversal
// happens host-side, so reads cross the external link.
func (ix *Index) readPage(id storage.PageID, buf []byte) error {
	if id == ix.openLeafID {
		copy(buf, ix.openLeafBuf)
		return nil
	}
	if id == ix.openIndexID {
		copy(buf, ix.openIndexBuf)
		return nil
	}
	return ix.dev.Read(storage.External, id, buf)
}

func (ix *Index) readRootNode(ref nodeRef, seenPages map[storage.PageID]bool, res *LookupResult) (leaves []nodeRef, next nodeRef, err error) {
	buf := make([]byte, storage.PageSize)
	if err := ix.readPage(ref.page, buf); err != nil {
		return nil, nilRef, err
	}
	if !seenPages[ref.page] {
		seenPages[ref.page] = true
		res.IndexPagesRead++
	}
	off := int(ref.slot) * ix.rootNodeSize
	if off+ix.rootNodeSize > len(buf) {
		return nil, nilRef, fmt.Errorf("index: root slot %d out of page", ref.slot)
	}
	node := buf[off : off+ix.rootNodeSize]
	n := int(binary.LittleEndian.Uint16(node))
	if n > ix.params.RootEntries {
		return nil, nilRef, fmt.Errorf("index: corrupt root node (count %d)", n)
	}
	for i := 0; i < n; i++ {
		leaves = append(leaves, nodeRef{
			page: storage.PageID(binary.LittleEndian.Uint32(node[2+6*i:])),
			slot: binary.LittleEndian.Uint16(node[2+6*i+4:]),
		})
	}
	tail := 2 + 6*ix.params.RootEntries
	next = nodeRef{
		page: storage.PageID(binary.LittleEndian.Uint32(node[tail:])),
		slot: binary.LittleEndian.Uint16(node[tail+4:]),
	}
	return leaves, next, nil
}

func (ix *Index) readLeafNode(ref nodeRef, seenPages map[storage.PageID]bool, res *LookupResult) ([]storage.PageID, error) {
	buf := make([]byte, storage.PageSize)
	if err := ix.readPage(ref.page, buf); err != nil {
		return nil, err
	}
	if !seenPages[ref.page] {
		seenPages[ref.page] = true
		res.LeafPagesRead++
	}
	res.LeafReads++
	off := int(ref.slot) * ix.leafNodeSize
	if off+ix.leafNodeSize > len(buf) {
		return nil, fmt.Errorf("index: leaf slot %d out of page", ref.slot)
	}
	node := buf[off : off+ix.leafNodeSize]
	n := int(binary.LittleEndian.Uint16(node))
	if n > ix.params.LeafEntries {
		return nil, fmt.Errorf("index: corrupt leaf node (count %d)", n)
	}
	out := make([]storage.PageID, n)
	for i := 0; i < n; i++ {
		out[i] = storage.PageID(binary.LittleEndian.Uint32(node[2+4*i:]))
	}
	return out, nil
}

// SimulatedLookupTime estimates the traversal time of a lookup on the
// simulated device: root hops are serially dependent (one flash latency
// each), and each root visit's leaf pages stream in parallel.
func (ix *Index) SimulatedLookupTime(res LookupResult) time.Duration {
	t := ix.dev.DependentAccessTime(uint64(res.RootHops))
	t += ix.dev.TransferTime(storage.External, uint64(res.IndexPagesRead+res.LeafPagesRead)*storage.PageSize)
	return t
}
