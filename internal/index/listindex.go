package index

import (
	"encoding/binary"
	"sort"
	"time"

	"mithrilog/internal/storage"
)

// ListIndex is the naive alternative §6.1 argues against: each hash bucket
// owns a plain linked list of large index nodes, one node per storage
// page, each holding up to NodeEntries data page addresses. Every node
// visit is a serially dependent read, so queries are latency-bound unless
// nodes are huge — and huge nodes blow up the ingest memory footprint
// because every bucket buffers a partial node in memory. The ablation
// benchmark contrasts this design with the tree-of-lists Index.
type ListIndex struct {
	dev     *storage.Device
	buckets []listBucket
	entries int
	seed    uint64
	adds    uint64
}

type listBucket struct {
	buf   []storage.PageID
	head  storage.PageID
	count uint64
}

// ListParams sizes a ListIndex.
type ListParams struct {
	// Buckets is the hash table size (default 65536).
	Buckets int
	// NodeEntries is the number of page addresses per list node; §6.1
	// observes that saturating a 4 GB/s device at 100µs latency needs
	// more than 100 entries per node (default 512).
	NodeEntries int
	// Seed perturbs the hash functions.
	Seed uint64
}

func (p ListParams) withDefaults() ListParams {
	if p.Buckets <= 0 {
		p.Buckets = DefaultBuckets
	}
	if p.NodeEntries <= 0 {
		p.NodeEntries = 512
	}
	if max := (storage.PageSize - 10) / 4; p.NodeEntries > max {
		p.NodeEntries = max
	}
	return p
}

// NewList builds an empty naive list index.
func NewList(dev *storage.Device, p ListParams) *ListIndex {
	p = p.withDefaults()
	return &ListIndex{
		dev:     dev,
		buckets: make([]listBucket, p.Buckets),
		entries: p.NodeEntries,
		seed:    p.Seed,
	}
}

func (li *ListIndex) hash(token string) (int, int) {
	h1 := uint64(14695981039346656037) ^ li.seed
	for i := 0; i < len(token); i++ {
		h1 ^= uint64(token[i])
		h1 *= 1099511628211
	}
	h2 := h1*0x9e3779b97f4a7c15 + 0x165667b19e3779f9
	n := uint64(len(li.buckets))
	return int(fmix(h1) % n), int(fmix(h2) % n)
}

// Add records that token appears in the given data page.
func (li *ListIndex) Add(token string, page storage.PageID) error {
	if token == "" {
		return ErrTokenEmpty
	}
	a, b := li.hash(token)
	target := a
	if li.buckets[b].count < li.buckets[a].count {
		target = b
	}
	bk := &li.buckets[target]
	bk.count++
	li.adds++
	if bk.buf == nil {
		// Reserve the full node buffer up front, as a streaming ingester
		// must: this is the memory blowup §6.1 attributes to big nodes.
		bk.buf = make([]storage.PageID, 0, li.entries)
	}
	bk.buf = append(bk.buf, page)
	if len(bk.buf) >= li.entries {
		return li.flushNode(bk)
	}
	return nil
}

// node layout: u16 count | u32 next (page ID + 1, 0 = end of list) |
// entries × u32 page. Heads use the same +1 encoding so a zero-valued
// bucket means an empty list.
func (li *ListIndex) flushNode(bk *listBucket) error {
	if len(bk.buf) == 0 {
		return nil
	}
	buf := make([]byte, storage.PageSize)
	binary.LittleEndian.PutUint16(buf, uint16(len(bk.buf)))
	binary.LittleEndian.PutUint32(buf[2:], uint32(bk.head))
	for i, p := range bk.buf {
		binary.LittleEndian.PutUint32(buf[6+4*i:], uint32(p))
	}
	id, err := li.dev.Append(buf)
	if err != nil {
		return err
	}
	bk.head = id + 1
	bk.buf = bk.buf[:0]
	return nil
}

// Flush writes out all partial nodes.
func (li *ListIndex) Flush() error {
	for i := range li.buckets {
		if err := li.flushNode(&li.buckets[i]); err != nil {
			return err
		}
	}
	return nil
}

// ListLookupResult mirrors LookupResult for the naive index.
type ListLookupResult struct {
	Pages     []storage.PageID
	NodeHops  int // serially dependent node visits
	PagesRead int
}

// Lookup returns candidate pages for the token.
func (li *ListIndex) Lookup(token string) (ListLookupResult, error) {
	if token == "" {
		return ListLookupResult{}, ErrTokenEmpty
	}
	a, b := li.hash(token)
	var res ListLookupResult
	var pages []storage.PageID
	for _, bi := range dedupe2(a, b) {
		bk := &li.buckets[bi]
		pages = append(pages, bk.buf...)
		cur := bk.head
		buf := make([]byte, storage.PageSize)
		for cur != 0 {
			if err := li.dev.Read(storage.External, cur-1, buf); err != nil {
				return res, err
			}
			res.NodeHops++
			res.PagesRead++
			n := int(binary.LittleEndian.Uint16(buf))
			for i := 0; i < n; i++ {
				pages = append(pages, storage.PageID(binary.LittleEndian.Uint32(buf[6+4*i:])))
			}
			cur = storage.PageID(binary.LittleEndian.Uint32(buf[2:]))
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	res.Pages = dedupeSorted(pages)
	return res, nil
}

// MemoryFootprint estimates resident bytes of the ingest buffers; with
// large nodes this dwarfs the tree-of-lists design's footprint.
func (li *ListIndex) MemoryFootprint() int {
	total := 0
	for i := range li.buckets {
		total += cap(li.buckets[i].buf)*4 + 16
	}
	return total + len(li.buckets)*8
}

// SimulatedLookupTime estimates the latency-bound traversal: every node
// hop is serially dependent.
func (li *ListIndex) SimulatedLookupTime(res ListLookupResult) time.Duration {
	return li.dev.DependentAccessTime(uint64(res.NodeHops)) +
		li.dev.TransferTime(storage.External, uint64(res.PagesRead)*storage.PageSize)
}
