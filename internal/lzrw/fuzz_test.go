package lzrw

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip asserts compress→decompress identity on arbitrary bytes.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("repeated repeated repeated"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCompressor()
		got, err := Decompress(nil, c.Compress(nil, data))
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecompressNeverPanics feeds arbitrary bytes to the decoder.
func FuzzDecompressNeverPanics(f *testing.F) {
	c := NewCompressor()
	f.Add(c.Compress(nil, []byte("seed data")))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decompress(nil, data)
	})
}
