package lzrw

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func logSample(lines int) []byte {
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "2005.11.09 dn%03d RAS KERNEL INFO instruction cache parity error corrected %d\n", i%256, i%13)
	}
	return []byte(sb.String())
}

func roundTrip(t testing.TB, src []byte) []byte {
	t.Helper()
	c := NewCompressor()
	comp := c.Compress(nil, src)
	got, err := Decompress(nil, comp)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch (%d vs %d bytes)", len(got), len(src))
	}
	return comp
}

func TestRoundTripCases(t *testing.T) {
	for _, s := range []string{
		"",
		"a",
		"ab",
		"abc",
		"aaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
		"abcabcabcabcabcabc",
		strings.Repeat("pattern repeats ", 100),
		"no repeats whatsoever 0123456789",
	} {
		roundTrip(t, []byte(s))
	}
}

func TestRoundTripLogAndRatio(t *testing.T) {
	src := logSample(5000)
	comp := roundTrip(t, src)
	r := Ratio(len(src), len(comp))
	if r < 3 {
		t.Fatalf("LZRW1 ratio on repetitive logs = %.2f, expected > 3", r)
	}
	t.Logf("LZRW1 log ratio %.2fx", r)
}

func TestOverlappingCopy(t *testing.T) {
	// RLE-style data forces overlapping copies (offset < length).
	src := append([]byte("start"), bytes.Repeat([]byte{'z'}, 200)...)
	roundTrip(t, src)
}

func TestLongOffsetsExcluded(t *testing.T) {
	// A repeat farther than 4095 bytes back must not be used; round trip
	// must still succeed via literals.
	pattern := []byte("unique-pattern-here!")
	var src []byte
	src = append(src, pattern...)
	src = append(src, bytes.Repeat([]byte("-"), 5000)...)
	src = append(src, pattern...)
	roundTrip(t, src)
}

func TestIncompressibleExpansionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 32*1024)
	rng.Read(src)
	comp := roundTrip(t, src)
	// Worst case: 2 control bytes per 16 literals = 12.5% + header.
	if len(comp) > len(src)+len(src)/7+headerBytes {
		t.Fatalf("expansion too large: %d -> %d", len(src), len(comp))
	}
}

func TestDecompressCorrupt(t *testing.T) {
	src := logSample(100)
	comp := NewCompressor().Compress(nil, src)
	for name, blk := range map[string][]byte{
		"empty":     {},
		"header":    comp[:3],
		"truncated": comp[:len(comp)/3],
	} {
		if _, err := Decompress(nil, blk); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Copy offset pointing before block start.
	bad := []byte{4, 0, 0, 0, 0xff, 0xff, 0xff, 0x00}
	if _, err := Decompress(nil, bad); err == nil {
		t.Error("bad offset: expected error")
	}
}

func TestCompressorReuseAcrossBlocks(t *testing.T) {
	c := NewCompressor()
	a := logSample(50)
	b := []byte(strings.Repeat("different content\n", 50))
	ca := c.Compress(nil, a)
	cb := c.Compress(nil, b)
	if got, err := Decompress(nil, ca); err != nil || !bytes.Equal(got, a) {
		t.Fatalf("block a: %v", err)
	}
	if got, err := Decompress(nil, cb); err != nil || !bytes.Equal(got, b) {
		t.Fatalf("block b: %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8192)
		src := make([]byte, n)
		// Skewed alphabet to produce plenty of matches.
		for i := range src {
			src[i] = byte('a' + rng.Intn(1+rng.Intn(26)))
		}
		c := NewCompressor()
		comp := c.Compress(nil, src)
		got, err := Decompress(nil, comp)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	c := NewCompressor()
	src := logSample(10000)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = c.Compress(dst[:0], src)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := logSample(10000)
	comp := NewCompressor().Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	var dst []byte
	var err error
	for i := 0; i < b.N; i++ {
		dst, err = Decompress(dst[:0], comp)
		if err != nil {
			b.Fatal(err)
		}
	}
}
