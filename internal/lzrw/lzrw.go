// Package lzrw implements LZRW1, Ross Williams' extremely fast Ziv-Lempel
// compressor (DCC 1991), which LZAH derives from and which the paper uses
// as a compression-ratio baseline (Table 5) and a resource-efficiency
// comparison point (Table 4).
//
// The format follows the original: the output is a sequence of groups,
// each led by a 16-bit control word whose bits select, for up to 16 items,
// between a literal byte (bit 0) and a copy item (bit 1). A copy item is
// two bytes encoding a 12-bit offset (1..4095) and a 4-bit length code for
// copies of 3..18 bytes. Matches are found with a 4096-entry hash table
// over 3-byte prefixes; like the original, the table is never cleared
// within a block and stale entries are verified before use.
package lzrw

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// maxOffset is the 12-bit copy window.
const maxOffset = 1 << 12

// minMatch and maxMatch bound copy lengths (length code 0 => 3).
const (
	minMatch = 3
	maxMatch = 18
)

// hashEntries is the size of the compressor's prefix hash table.
const hashEntries = 4096

// headerBytes carries the uncompressed length for exact decoding.
const headerBytes = 4

// ErrCorrupt reports a malformed compressed block.
var ErrCorrupt = errors.New("lzrw: corrupt compressed block")

// Compressor holds the reusable hash table. Not safe for concurrent use.
type Compressor struct {
	table [hashEntries]int32
	gen   [hashEntries]uint32
	cur   uint32
}

// NewCompressor returns a ready compressor.
func NewCompressor() *Compressor { return &Compressor{} }

func (c *Compressor) newBlock() {
	c.cur++
	if c.cur == 0 {
		for i := range c.gen {
			c.gen[i] = 0
		}
		c.cur = 1
	}
}

func hash3(a, b, d byte) int {
	h := uint32(a)<<16 | uint32(b)<<8 | uint32(d)
	h = (h * 2654435761) >> 20
	return int(h % hashEntries)
}

// Compress appends the LZRW1-compressed form of src to dst.
func (c *Compressor) Compress(dst, src []byte) []byte {
	c.newBlock()
	base := len(dst)
	dst = append(dst, make([]byte, headerBytes)...)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(src)))

	pos := 0
	for pos < len(src) {
		ctrlPos := len(dst)
		dst = append(dst, 0, 0) // control word placeholder
		var ctrl uint16
		for item := 0; item < 16 && pos < len(src); item++ {
			if pos+minMatch <= len(src) {
				h := hash3(src[pos], src[pos+1], src[pos+2])
				cand := int(c.table[h])
				fresh := c.gen[h] == c.cur
				c.table[h] = int32(pos)
				c.gen[h] = c.cur
				if fresh && cand < pos && pos-cand < maxOffset {
					// Verify and extend the match.
					n := 0
					limit := len(src) - pos
					if limit > maxMatch {
						limit = maxMatch
					}
					for n < limit && src[cand+n] == src[pos+n] {
						n++
					}
					if n >= minMatch {
						off := pos - cand
						ctrl |= 1 << uint(item)
						// Copy item: oooo oooo | oooo llll (offset 12 bits,
						// length-3 in 4 bits).
						dst = append(dst,
							byte(off>>4),
							byte(off<<4)|byte(n-minMatch))
						pos += n
						continue
					}
				}
			}
			dst = append(dst, src[pos])
			pos++
		}
		binary.LittleEndian.PutUint16(dst[ctrlPos:], ctrl)
	}
	return dst
}

// Decompress appends the decompressed contents of a block to dst.
func Decompress(dst, block []byte) ([]byte, error) {
	if len(block) < headerBytes {
		return dst, ErrCorrupt
	}
	uncomp := int(binary.LittleEndian.Uint32(block))
	in := block[headerBytes:]
	start := len(dst)
	pos := 0
	for len(dst)-start < uncomp {
		if pos+2 > len(in) {
			return dst, fmt.Errorf("%w: truncated control word", ErrCorrupt)
		}
		ctrl := binary.LittleEndian.Uint16(in[pos:])
		pos += 2
		for item := 0; item < 16 && len(dst)-start < uncomp; item++ {
			if ctrl&(1<<uint(item)) != 0 {
				if pos+2 > len(in) {
					return dst, fmt.Errorf("%w: truncated copy item", ErrCorrupt)
				}
				off := int(in[pos])<<4 | int(in[pos+1])>>4
				n := int(in[pos+1]&0x0f) + minMatch
				pos += 2
				srcPos := len(dst) - off
				if off == 0 || srcPos < start {
					return dst, fmt.Errorf("%w: copy offset %d out of range", ErrCorrupt, off)
				}
				// Byte-by-byte copy: overlapping copies are legal.
				for i := 0; i < n; i++ {
					dst = append(dst, dst[srcPos+i])
				}
			} else {
				if pos >= len(in) {
					return dst, fmt.Errorf("%w: truncated literal", ErrCorrupt)
				}
				dst = append(dst, in[pos])
				pos++
			}
		}
	}
	if len(dst)-start != uncomp {
		return dst, fmt.Errorf("%w: produced %d of %d bytes", ErrCorrupt, len(dst)-start, uncomp)
	}
	return dst, nil
}

// Ratio is original size divided by compressed size.
func Ratio(originalLen, compressedLen int) float64 {
	if compressedLen == 0 {
		return 0
	}
	return float64(originalLen) / float64(compressedLen)
}
