// Package perf is the wall-clock benchmark harness behind cmd/perfbench
// and the committed BENCH_<n>.json trajectory (see PERFORMANCE.md).
//
// Everything this package measures is host wall-clock time — the cost of
// running the reproduction's software engine — never the simulated cycle
// model: hwsim cycle accounts are a pure function of the input data and
// are fenced separately by the hwpure/unitcheck analyzers. The harness
// runs a fixed workload matrix (ingest MB/s; full-scan queries/s at 1, 8,
// and 64 in-flight against cold and warm page caches; p50/p99 latency;
// allocations per operation on the tokenize, cuckoo-lookup, and LZAH
// decode inner loops) and emits a schema-versioned report that diffs
// against a recorded baseline.
//
// Allocation discipline: the harness itself allocates freely (it is not a
// hot path), but its micro legs measure the zero-allocation contracts of
// internal/tokenizer, internal/cuckoo, and internal/lzah directly, so a
// regression in those contracts moves a committed number.
package perf

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"mithrilog"
	"mithrilog/internal/loggen"
)

// DefaultRegressionPct is the -baseline gate: a headline metric moving
// worse by more than this fraction fails the diff.
const DefaultRegressionPct = 10.0

// Options size a harness run. The zero value selects the full matrix;
// Quick shrinks everything to CI-smoke scale.
type Options struct {
	// Label names the tree state in the recorded run.
	Label string
	// Lines is the generated dataset size (default 30000; quick 6000).
	Lines int
	// Rounds is the number of queries issued per matrix point (default
	// 96; quick 16).
	Rounds int
	// InFlight are the offered-load levels (default 1, 8, 64).
	InFlight []int
	// Shards are the fleet widths to measure the query matrix at (default
	// 1 and 4). Widths above 1 route the same full-scan mix through the
	// scatter-gather router over an identically-ingested fleet, so the
	// delta against width 1 is the router's overhead.
	Shards []int
	// CacheBytes sizes the warm engine's page cache (default 256 MiB).
	CacheBytes int64
	// Seed drives dataset generation (default: the profile seed).
	Seed int64
	// Quick selects the reduced CI-smoke matrix.
	Quick bool
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Label == "" {
		o.Label = "dev"
	}
	if o.Lines <= 0 {
		if o.Quick {
			o.Lines = 6000
		} else {
			o.Lines = 30000
		}
	}
	if o.Rounds <= 0 {
		if o.Quick {
			o.Rounds = 16
		} else {
			o.Rounds = 96
		}
	}
	if len(o.InFlight) == 0 {
		o.InFlight = []int{1, 8, 64}
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 4}
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 256 << 20
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// queryMix is the fixed expression set issued round-robin at every matrix
// point: single tokens of varying selectivity, conjunctions, negations,
// and disjunctions over the Liberty2 vocabulary, all offloadable.
var queryMix = []string{
	`kernel:`, `lustre`, `recovery`, `error`, `daemon`, `session`,
	`kernel: AND error`, `lustre AND NOT recovery`, `daemon OR session`,
	`connection AND refused`, `NOT kernel:`, `heartbeat`,
	`client AND session`, `pbs_mom:`, `status`, `failed OR aborted`,
}

// regexMix is the regex leg's pattern set: selective patterns whose
// delimiter-bounded literal factors the prefilter can probe through the
// inverted index, plus one deliberate ∅-factor control that must take the
// full-scan fallback on both paths.
var regexMix = []string{
	` lustre recovery complete for target `,
	` connection refused from `,
	` (scheduler restarted after|NFS server not responding) `,
	` ECC error at address 0x`,
	` heartbeat missed from `,
	`exceeded`, // no bounded factor: forced fallback control
}

// Measure executes the full workload matrix and returns the recorded run.
func Measure(opts Options) (Run, error) {
	opts = opts.withDefaults()
	run := Run{
		Label:     opts.Label,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Quick:     opts.Quick,
	}

	profile := loggen.Liberty2
	ds := loggen.Generate(profile, opts.Lines, opts.Seed)
	raw := int64(ds.SizeBytes())
	run.Workload = WorkloadSpec{
		Dataset:    profile.Name,
		Lines:      len(ds.Lines),
		RawBytes:   raw,
		QueryMix:   len(queryMix),
		Rounds:     opts.Rounds,
		CacheBytes: opts.CacheBytes,
		Seed:       opts.Seed,
	}

	queries := make([]mithrilog.Query, len(queryMix))
	for i, e := range queryMix {
		q, err := mithrilog.ParseQuery(e)
		if err != nil {
			return run, fmt.Errorf("perf: query mix %q: %w", e, err)
		}
		queries[i] = q
	}

	opts.Log("ingest: %d lines (%.1f MB)", len(ds.Lines), float64(raw)/1e6)
	ing, err := measureIngest(ds)
	if err != nil {
		return run, err
	}
	run.Ingest = ing

	// Cold engine: no page cache — every query pays the flash read, the
	// LZAH decode, and the tokenization. Warm engine: cache sized to hold
	// the whole tokenized dataset, pre-warmed with one pass, so measured
	// queries re-enter the pipeline at the hash filters. The shards axis
	// repeats the matrix on a fleet: same lines, same cache budget, the
	// queries scattered and merged by the router.
	maxFlight := 0
	for _, n := range opts.InFlight {
		if n > maxFlight {
			maxFlight = n
		}
	}
	mkEngine := func(cacheBytes int64, shards int) (*mithrilog.Engine, error) {
		eng := mithrilog.Open(mithrilog.Config{
			CacheBytes:  cacheBytes,
			MaxInFlight: maxFlight,
			QueueDepth:  maxFlight * 4,
			Shards:      shards,
			// All bench queries share the anonymous tenant; the quota must
			// admit the full offered load or the fleet measures rejections.
			TenantInFlight: maxFlight,
		})
		if err := eng.IngestBytes(ds.Lines); err != nil {
			return nil, err
		}
		if err := eng.Flush(); err != nil {
			return nil, err
		}
		return eng, nil
	}
	for _, nsh := range opts.Shards {
		cold, err := mkEngine(0, nsh)
		if err != nil {
			return run, err
		}
		warm, err := mkEngine(opts.CacheBytes, nsh)
		if err != nil {
			return run, err
		}
		// Warm pass: populate the cache and the allocator's steady state.
		for _, q := range queries {
			if _, err := warm.SearchQuery(q, mithrilog.SearchOptions{NoIndex: true}); err != nil {
				return run, err
			}
		}
		if _, err := cold.SearchQuery(queries[0], mithrilog.SearchOptions{NoIndex: true}); err != nil {
			return run, err
		}

		for _, cache := range []string{"cold", "warm"} {
			eng := cold
			if cache == "warm" {
				eng = warm
			}
			for _, n := range opts.InFlight {
				pt, err := measureQueries(eng, queries, n, opts.Rounds, cache)
				if err != nil {
					return run, err
				}
				pt.Shards = nsh
				opts.Log("queries: %s @%d in-flight x%d shards: %.0f q/s (p99 %.0f us)",
					cache, n, nsh, pt.QPS, pt.P99Us)
				run.Queries = append(run.Queries, pt)
			}
		}
	}
	run.SortQueries()

	// Regex leg: a cold single-shard engine, so every fallback scan pays
	// the full flash-read + decode cost the prefilter is meant to avoid.
	regexRounds := opts.Rounds / 4
	if regexRounds < 8 {
		regexRounds = 8
	}
	opts.Log("regex: %d patterns x %d rounds", len(regexMix), regexRounds)
	reng, err := mkEngine(0, 1)
	if err != nil {
		return run, err
	}
	run.Regex, err = measureRegex(reng, regexRounds, opts.Log)
	if err != nil {
		return run, err
	}

	opts.Log("micro: tokenizer / cuckoo / lzah / filter")
	micro, err := measureMicro(ds, opts)
	if err != nil {
		return run, err
	}
	run.Micro = micro
	return run, nil
}

// measureRegex times every regexMix pattern twice — default path, then
// with the prefilter forced off — and cross-checks that both paths agree
// on the match count (the cheap in-harness slice of the differential
// oracle).
func measureRegex(eng *mithrilog.Engine, rounds int, logf func(format string, args ...any)) ([]RegexPoint, error) {
	ctx := context.Background()
	pts := make([]RegexPoint, 0, len(regexMix))
	for _, pattern := range regexMix {
		pt := RegexPoint{Pattern: pattern, Queries: rounds}
		var matches [2]int
		for i, noPre := range []bool{false, true} {
			opts := mithrilog.RegexOptions{NoPrefilter: noPre}
			// Warm-up scan absorbs one-time allocator growth.
			res, err := eng.SearchRegexOpts(ctx, "", pattern, opts)
			if err != nil {
				return nil, fmt.Errorf("perf: regex %q: %w", pattern, err)
			}
			start := time.Now()
			for r := 0; r < rounds; r++ {
				res, err = eng.SearchRegexOpts(ctx, "", pattern, opts)
				if err != nil {
					return nil, fmt.Errorf("perf: regex %q: %w", pattern, err)
				}
			}
			qps := float64(rounds) / time.Since(start).Seconds()
			matches[i] = res.Matches
			if noPre {
				pt.FullScanQPS = qps
			} else {
				pt.QPS = qps
				pt.Prefiltered = res.Prefiltered
				pt.Matches = res.Matches
				if res.TotalPages > 0 {
					pt.PagesSkippedPct = float64(res.TotalPages-res.CandidatePages) /
						float64(res.TotalPages) * 100
				}
			}
		}
		if matches[0] != matches[1] {
			return nil, fmt.Errorf("perf: regex %q: prefiltered %d matches, full scan %d",
				pattern, matches[0], matches[1])
		}
		pt.Speedup = pt.QPS / pt.FullScanQPS
		logf("regex %q: %.1f q/s vs %.1f q/s full scan (%.1fx, %.0f%% pages skipped)",
			pattern, pt.QPS, pt.FullScanQPS, pt.Speedup, pt.PagesSkippedPct)
		pts = append(pts, pt)
	}
	return pts, nil
}

// measureIngest times IngestBytes+Flush over the dataset on a fresh
// engine and counts allocations per line.
func measureIngest(ds *loggen.Dataset) (IngestResult, error) {
	var res IngestResult
	// Warm-up engine absorbs one-time allocator growth.
	warmup := mithrilog.Open(mithrilog.Config{})
	if err := warmup.IngestBytes(ds.Lines); err != nil {
		return res, err
	}
	if err := warmup.Flush(); err != nil {
		return res, err
	}

	eng := mithrilog.Open(mithrilog.Config{})
	var ingestErr error
	allocs, elapsed := allocsAndTime(func() {
		if err := eng.IngestBytes(ds.Lines); err != nil {
			ingestErr = err
			return
		}
		ingestErr = eng.Flush()
	})
	if ingestErr != nil {
		return res, ingestErr
	}
	raw := float64(ds.SizeBytes())
	sec := elapsed.Seconds()
	res.WallMs = sec * 1e3
	res.MBPerS = raw / 1e6 / sec
	res.LinesPerS = float64(len(ds.Lines)) / sec
	res.AllocsPerLine = float64(allocs) / float64(len(ds.Lines))
	return res, nil
}

// measureQueries issues rounds queries from the mix with inFlight workers
// and reports aggregate throughput and latency percentiles.
func measureQueries(eng *mithrilog.Engine, queries []mithrilog.Query, inFlight, rounds int, cache string) (QueryPoint, error) {
	pt := QueryPoint{InFlight: inFlight, Cache: cache, Queries: rounds}
	opts := mithrilog.SearchOptions{NoIndex: true}

	jobs := make(chan mithrilog.Query, rounds)
	for i := 0; i < rounds; i++ {
		jobs <- queries[i%len(queries)]
	}
	close(jobs)

	lats := make([]time.Duration, 0, rounds)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, inFlight)
	start := time.Now()
	for w := 0; w < inFlight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, rounds/inFlight+1)
			for q := range jobs {
				qs := time.Now()
				if _, err := eng.SearchQuery(q, opts); err != nil {
					errCh <- err
					return
				}
				local = append(local, time.Since(qs))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return pt, err
	default:
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pt.WallMs = elapsed.Seconds() * 1e3
	pt.QPS = float64(rounds) / elapsed.Seconds()
	pt.P50Us = float64(percentile(lats, 50).Microseconds())
	pt.P99Us = float64(percentile(lats, 99).Microseconds())
	return pt, nil
}

// percentile returns the p-th percentile of sorted durations (nearest
// rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
