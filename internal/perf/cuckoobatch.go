package perf

import (
	"time"

	"mithrilog/internal/cuckoo"
)

// cuckooBatchNs times Table.LookupBatch over the token stream in groups
// of cuckoo.BatchSize, returning ns per token. The result arrays are
// reused across iterations so the figure measures the lookup path, not
// allocator traffic (the batch path itself allocates nothing).
func cuckooBatchNs(table *cuckoo.Table, toks [][]byte, iters int) float64 {
	rows := make([]int32, len(toks))
	pairs := make([][]cuckoo.FlagPair, len(toks))
	table.LookupBatch(toks, rows, pairs) // warm
	start := time.Now()
	for i := 0; i < iters; i++ {
		table.LookupBatch(toks, rows, pairs)
	}
	return nsPerOp(int64(len(toks))*int64(iters), time.Since(start))
}
