package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Schema identifies the BENCH_*.json layout this package reads and
// writes. Bump the trailing version on any incompatible change and teach
// Validate both forms for at least one PR.
const Schema = "mithrilog.bench/1"

// Report is the persistent perf trajectory: a schema tag plus an ordered
// list of runs (oldest first). The committed BENCH_<n>.json at the repo
// root holds one Report whose runs span the "before" and "after" of the
// PR that produced it; later PRs append runs or start a new file.
type Report struct {
	// Schema is always the Schema constant.
	Schema string `json:"schema"`
	// Bench is the PR number the file belongs to (BENCH_6.json -> 6).
	Bench int `json:"bench,omitempty"`
	// Runs is the recorded trajectory, oldest first.
	Runs []Run `json:"runs"`
}

// Run is one full execution of the workload matrix on one machine.
type Run struct {
	// Label names the tree state measured ("pre-pr6", "pr6", "dev", ...).
	Label string `json:"label"`
	// Timestamp is RFC3339 wall time of the run (informational only).
	Timestamp string `json:"timestamp,omitempty"`
	// GoVersion/GOOS/GOARCH/CPUs describe the machine; wall-clock numbers
	// are only comparable between runs with matching machine fields.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// Quick marks a reduced-size CI smoke run; quick numbers are noisy
	// and never used for regression gating.
	Quick bool `json:"quick,omitempty"`

	Workload WorkloadSpec `json:"workload"`
	Ingest   IngestResult `json:"ingest"`
	Queries  []QueryPoint `json:"queries"`
	// Regex is the literal-factor prefilter leg; absent from runs
	// recorded before the axis existed.
	Regex []RegexPoint `json:"regex,omitempty"`
	Micro MicroResults `json:"micro"`
}

// WorkloadSpec pins the workload so runs are comparable.
type WorkloadSpec struct {
	// Dataset is the loggen profile name.
	Dataset string `json:"dataset"`
	// Lines generated; RawBytes is their total size with newlines.
	Lines    int   `json:"lines"`
	RawBytes int64 `json:"raw_bytes"`
	// QueryMix is the number of distinct expressions in the mix.
	QueryMix int `json:"query_mix"`
	// Rounds is the number of queries issued per matrix point.
	Rounds int `json:"rounds"`
	// CacheBytes sizes the decompressed-page cache of the warm engine.
	CacheBytes int64 `json:"cache_bytes"`
	// Seed drives dataset generation.
	Seed int64 `json:"seed"`
}

// IngestResult is the ingest leg of the matrix: wall-clock cost of
// IngestBytes+Flush over the whole dataset on a fresh engine.
type IngestResult struct {
	WallMs    float64 `json:"wall_ms"`
	MBPerS    float64 `json:"mb_per_s"`
	LinesPerS float64 `json:"lines_per_s"`
	// AllocsPerLine is the allocation count per ingested line.
	AllocsPerLine float64 `json:"allocs_per_line"`
}

// QueryPoint is one cell of the query matrix: Rounds full-scan queries
// issued from InFlight workers against a cold (uncached) or warm
// (pre-warmed page cache) engine.
type QueryPoint struct {
	InFlight int `json:"in_flight"`
	// Cache is "cold" (no page cache: every query pays flash read, LZAH
	// decode, and tokenization) or "warm" (cache pre-warmed, hits re-enter
	// the pipeline at the hash filters).
	Cache   string  `json:"cache"`
	Queries int     `json:"queries"`
	WallMs  float64 `json:"wall_ms"`
	QPS     float64 `json:"qps"`
	P50Us   float64 `json:"p50_us"`
	P99Us   float64 `json:"p99_us"`
	// Shards is the fleet width the point was measured against; 0 (from
	// reports recorded before the axis existed) means 1. Points with
	// Shards > 1 run the same full-scan mix through the scatter-gather
	// router, so their delta against the Shards = 1 points at the same
	// (in_flight, cache) is the router overhead.
	Shards int `json:"shards,omitempty"`
}

// ShardsOrOne normalizes the pre-axis encoding (0 = single engine).
func (q QueryPoint) ShardsOrOne() int {
	if q.Shards <= 0 {
		return 1
	}
	return q.Shards
}

// RegexPoint is one pattern of the regex leg: the same scan measured with
// the literal-factor index prefilter on its default path and again with
// it forced off (full scan), single in-flight, on a cold single-shard
// engine. The QPS/FullScanQPS ratio is the prefilter's wall-clock win;
// for the deliberate ∅-factor pattern both numbers take the fallback
// path and should agree to within noise.
type RegexPoint struct {
	// Pattern is the rex expression scanned.
	Pattern string `json:"pattern"`
	// Prefiltered reports whether the pattern yielded usable literal
	// factors (false = the ∅-factor fallback control).
	Prefiltered bool `json:"prefiltered"`
	// Queries is the number of scans issued per path.
	Queries int `json:"queries"`
	// QPS is default-path throughput; FullScanQPS re-measures the same
	// pattern with the prefilter disabled.
	QPS         float64 `json:"qps"`
	FullScanQPS float64 `json:"full_scan_qps"`
	// Speedup is QPS/FullScanQPS.
	Speedup float64 `json:"speedup"`
	// PagesSkippedPct is the share of data pages the prefilter proved
	// non-matching without reading (0 on fallback).
	PagesSkippedPct float64 `json:"pages_skipped_pct"`
	// Matches is the per-scan matching-line count (identical on both
	// paths by the differential oracle).
	Matches int `json:"matches"`
}

// MicroResults are single-goroutine microbenchmarks of the three scan-path
// engines, with allocation discipline measured directly.
type MicroResults struct {
	// TokenizeMBPerS streams dataset lines through one tokenizer Array.
	TokenizeMBPerS float64 `json:"tokenize_mb_per_s"`
	// TokenizeAllocsPerLine is steady-state allocations per tokenized
	// line (the zero-alloc target of the raw-speed pass).
	TokenizeAllocsPerLine float64 `json:"tokenize_allocs_per_line"`
	// CuckooLookupNs is ns per single LookupBytes over a token stream.
	CuckooLookupNs float64 `json:"cuckoo_lookup_ns"`
	// CuckooBatchNs is ns per token for the batched 8-at-a-time lookup
	// path; zero in runs recorded before the API existed.
	CuckooBatchNs float64 `json:"cuckoo_batch_ns,omitempty"`
	// CuckooAllocsPerLookup is allocations per lookup (target: zero).
	CuckooAllocsPerLookup float64 `json:"cuckoo_allocs_per_lookup"`
	// LZAHDecodeMBPerS decompresses page-sized blocks into a reused arena.
	LZAHDecodeMBPerS float64 `json:"lzah_decode_mb_per_s"`
	// LZAHCompressMBPerS compresses the dataset text into blocks.
	LZAHCompressMBPerS float64 `json:"lzah_compress_mb_per_s"`
	// LZAHDecodeAllocsPerBlock is allocations per decompressed block with
	// a pre-grown destination (target: zero).
	LZAHDecodeAllocsPerBlock float64 `json:"lzah_decode_allocs_per_block"`
	// FilterWarmMBPerS runs the hash-filter pass over pre-tokenized
	// blocks (the page-cache hit path) in raw-text MB/s.
	FilterWarmMBPerS float64 `json:"filter_warm_mb_per_s"`
}

// Validate checks structural invariants of a decoded report: schema tag,
// non-empty runs, per-run machine fields, and a complete query matrix.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("perf: unknown schema %q (want %q)", r.Schema, Schema)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("perf: report has no runs")
	}
	for i := range r.Runs {
		if err := r.Runs[i].validate(); err != nil {
			return fmt.Errorf("perf: run %d (%q): %w", i, r.Runs[i].Label, err)
		}
	}
	return nil
}

func (run *Run) validate() error {
	if run.Label == "" {
		return fmt.Errorf("missing label")
	}
	if run.GoVersion == "" || run.GOOS == "" || run.GOARCH == "" || run.CPUs <= 0 {
		return fmt.Errorf("incomplete machine fields")
	}
	w := run.Workload
	if w.Dataset == "" || w.Lines <= 0 || w.RawBytes <= 0 || w.QueryMix <= 0 || w.Rounds <= 0 {
		return fmt.Errorf("incomplete workload spec")
	}
	if run.Ingest.MBPerS <= 0 || run.Ingest.LinesPerS <= 0 {
		return fmt.Errorf("ingest leg missing or non-positive")
	}
	if len(run.Queries) == 0 {
		return fmt.Errorf("query matrix empty")
	}
	seen := map[string]bool{}
	for _, q := range run.Queries {
		if q.Cache != "cold" && q.Cache != "warm" {
			return fmt.Errorf("query point cache %q (want cold|warm)", q.Cache)
		}
		if q.InFlight <= 0 || q.QPS <= 0 || q.Queries <= 0 {
			return fmt.Errorf("query point %d/%s non-positive", q.InFlight, q.Cache)
		}
		if q.Shards < 0 {
			return fmt.Errorf("query point %d/%s negative shards", q.InFlight, q.Cache)
		}
		key := fmt.Sprintf("%d/%s/%d", q.InFlight, q.Cache, q.ShardsOrOne())
		if seen[key] {
			return fmt.Errorf("duplicate query point %s", key)
		}
		seen[key] = true
	}
	seenRe := map[string]bool{}
	for _, p := range run.Regex {
		if p.Pattern == "" {
			return fmt.Errorf("regex point with empty pattern")
		}
		if p.Queries <= 0 || p.QPS <= 0 || p.FullScanQPS <= 0 {
			return fmt.Errorf("regex point %q non-positive", p.Pattern)
		}
		if p.PagesSkippedPct < 0 || p.PagesSkippedPct > 100 {
			return fmt.Errorf("regex point %q pages_skipped_pct out of range", p.Pattern)
		}
		if seenRe[p.Pattern] {
			return fmt.Errorf("duplicate regex point %q", p.Pattern)
		}
		seenRe[p.Pattern] = true
	}
	if run.Micro.TokenizeMBPerS <= 0 || run.Micro.LZAHDecodeMBPerS <= 0 || run.Micro.CuckooLookupNs <= 0 {
		return fmt.Errorf("micro leg missing or non-positive")
	}
	return nil
}

// RegexPointFor returns the regex-leg point for a pattern, or false.
func (run *Run) RegexPointFor(pattern string) (RegexPoint, bool) {
	for _, p := range run.Regex {
		if p.Pattern == pattern {
			return p, true
		}
	}
	return RegexPoint{}, false
}

// Point returns the single-engine query point at (inFlight, cache), or
// false. Sharded points are addressed with PointAt.
func (run *Run) Point(inFlight int, cache string) (QueryPoint, bool) {
	return run.PointAt(inFlight, cache, 1)
}

// PointAt returns the query point at (inFlight, cache, shards), or false.
func (run *Run) PointAt(inFlight int, cache string, shards int) (QueryPoint, bool) {
	for _, q := range run.Queries {
		if q.InFlight == inFlight && q.Cache == cache && q.ShardsOrOne() == shards {
			return q, true
		}
	}
	return QueryPoint{}, false
}

// Last returns the most recent run, or false on an empty report.
func (r *Report) Last() (Run, bool) {
	if len(r.Runs) == 0 {
		return Run{}, false
	}
	return r.Runs[len(r.Runs)-1], true
}

// SortQueries orders a run's query matrix canonically (ascending shard
// count, cold before warm, then ascending in-flight), so reports diff
// cleanly.
func (run *Run) SortQueries() {
	sort.Slice(run.Queries, func(i, j int) bool {
		a, b := run.Queries[i], run.Queries[j]
		if a.ShardsOrOne() != b.ShardsOrOne() {
			return a.ShardsOrOne() < b.ShardsOrOne()
		}
		if a.Cache != b.Cache {
			return a.Cache == "cold"
		}
		return a.InFlight < b.InFlight
	})
}

// ReadReport decodes and validates a report file.
func ReadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeReport(f)
}

// DecodeReport decodes and validates a report stream.
func DecodeReport(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("perf: decode report: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// WriteReport validates and writes a report to path with a trailing
// newline, via a temp file rename so a crash never leaves a torn file.
func WriteReport(path string, rep *Report) error {
	if err := rep.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
