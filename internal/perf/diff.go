package perf

import (
	"fmt"
	"strings"
)

// Delta is one headline metric compared between two runs.
type Delta struct {
	// Name is the metric ("ingest.mb_per_s", "queries.warm.8.qps", ...).
	Name string
	// Old and New are the metric values; HigherIsBetter orients them.
	Old, New       float64
	HigherIsBetter bool
	// ChangePct is the signed relative change in the metric's good
	// direction: positive = improvement, negative = regression.
	ChangePct float64
	// Regressed marks a change worse than the gating threshold.
	Regressed bool
}

// Ratio returns New/Old in the "speedup" orientation: >1 means the new
// run is better, regardless of the metric's direction.
func (d Delta) Ratio() float64 {
	if d.Old == 0 || d.New == 0 {
		return 0
	}
	if d.HigherIsBetter {
		return d.New / d.Old
	}
	return d.Old / d.New
}

// Comparable reports whether two runs were recorded on matching machines
// and workloads; wall-clock diffs across machines are noise.
func Comparable(old, cur *Run) error {
	if old.GOOS != cur.GOOS || old.GOARCH != cur.GOARCH || old.CPUs != cur.CPUs {
		return fmt.Errorf("machine mismatch: %s/%s/%d CPUs vs %s/%s/%d CPUs",
			old.GOOS, old.GOARCH, old.CPUs, cur.GOOS, cur.GOARCH, cur.CPUs)
	}
	ow, cw := old.Workload, cur.Workload
	if ow.Dataset != cw.Dataset || ow.Lines != cw.Lines || ow.Rounds != cw.Rounds {
		return fmt.Errorf("workload mismatch: %s/%d lines/%d rounds vs %s/%d lines/%d rounds",
			ow.Dataset, ow.Lines, ow.Rounds, cw.Dataset, cw.Lines, cw.Rounds)
	}
	return nil
}

// Diff compares cur against old over the headline metrics and returns the
// deltas plus whether any metric regressed by more than thresholdPct.
// Metrics absent from either run (e.g. the batched-lookup leg in runs
// recorded before the API existed) are skipped.
func Diff(old, cur *Run, thresholdPct float64) (deltas []Delta, regressed bool) {
	if thresholdPct <= 0 {
		thresholdPct = DefaultRegressionPct
	}
	add := func(name string, o, n float64, higherBetter bool) {
		if o <= 0 || n <= 0 {
			return
		}
		var change float64
		if higherBetter {
			change = (n - o) / o * 100
		} else {
			change = (o - n) / o * 100
		}
		d := Delta{Name: name, Old: o, New: n, HigherIsBetter: higherBetter,
			ChangePct: change, Regressed: change < -thresholdPct}
		if d.Regressed {
			regressed = true
		}
		deltas = append(deltas, d)
	}

	add("ingest.mb_per_s", old.Ingest.MBPerS, cur.Ingest.MBPerS, true)
	add("ingest.allocs_per_line", old.Ingest.AllocsPerLine, cur.Ingest.AllocsPerLine, false)
	for _, oq := range old.Queries {
		cq, ok := cur.PointAt(oq.InFlight, oq.Cache, oq.ShardsOrOne())
		if !ok {
			continue
		}
		base := fmt.Sprintf("queries.%s.%d", oq.Cache, oq.InFlight)
		if s := oq.ShardsOrOne(); s > 1 {
			// Sharded points carry a suffix so the single-engine metric
			// names stay stable across reports recorded before the axis.
			base = fmt.Sprintf("%s.x%d", base, s)
		}
		add(base+".qps", oq.QPS, cq.QPS, true)
		add(base+".p99_us", oq.P99Us, cq.P99Us, false)
	}
	for i, op := range old.Regex {
		cp, ok := cur.RegexPointFor(op.Pattern)
		if !ok {
			continue
		}
		add(fmt.Sprintf("regex.%d.qps", i), op.QPS, cp.QPS, true)
	}
	add("micro.tokenize_mb_per_s", old.Micro.TokenizeMBPerS, cur.Micro.TokenizeMBPerS, true)
	add("micro.cuckoo_lookup_ns", old.Micro.CuckooLookupNs, cur.Micro.CuckooLookupNs, false)
	add("micro.cuckoo_batch_ns", old.Micro.CuckooBatchNs, cur.Micro.CuckooBatchNs, false)
	add("micro.lzah_decode_mb_per_s", old.Micro.LZAHDecodeMBPerS, cur.Micro.LZAHDecodeMBPerS, true)
	add("micro.lzah_compress_mb_per_s", old.Micro.LZAHCompressMBPerS, cur.Micro.LZAHCompressMBPerS, true)
	add("micro.filter_warm_mb_per_s", old.Micro.FilterWarmMBPerS, cur.Micro.FilterWarmMBPerS, true)
	return deltas, regressed
}

// FormatDeltas renders a diff as an aligned text table.
func FormatDeltas(deltas []Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %9s %8s\n", "metric", "old", "new", "change", "speedup")
	for _, d := range deltas {
		flag := ""
		if d.Regressed {
			flag = "  REGRESSED"
		}
		fmt.Fprintf(&b, "%-28s %14.2f %14.2f %+8.1f%% %7.2fx%s\n",
			d.Name, d.Old, d.New, d.ChangePct, d.Ratio(), flag)
	}
	return b.String()
}

// FormatRun renders one run as a human-readable summary table.
func FormatRun(run *Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %q  %s %s/%s %d CPUs\n", run.Label, run.GoVersion, run.GOOS, run.GOARCH, run.CPUs)
	w := run.Workload
	fmt.Fprintf(&b, "workload: %s, %d lines (%.1f MB), %d-query mix, %d rounds/point\n",
		w.Dataset, w.Lines, float64(w.RawBytes)/1e6, w.QueryMix, w.Rounds)
	fmt.Fprintf(&b, "ingest: %8.1f MB/s  %9.0f lines/s  %6.1f allocs/line\n",
		run.Ingest.MBPerS, run.Ingest.LinesPerS, run.Ingest.AllocsPerLine)
	for _, q := range run.Queries {
		shard := ""
		if q.ShardsOrOne() > 1 {
			shard = fmt.Sprintf(" x%d shards", q.ShardsOrOne())
		}
		fmt.Fprintf(&b, "queries %-4s @%-2d in-flight: %8.1f q/s  p50 %7.0f us  p99 %7.0f us%s\n",
			q.Cache, q.InFlight, q.QPS, q.P50Us, q.P99Us, shard)
	}
	for _, p := range run.Regex {
		path := "fallback"
		if p.Prefiltered {
			path = "prefiltered"
		}
		fmt.Fprintf(&b, "regex %-11s %8.1f q/s  fullscan %8.1f q/s  %5.1fx  %4.1f%% pages skipped  %q\n",
			path, p.QPS, p.FullScanQPS, p.Speedup, p.PagesSkippedPct, p.Pattern)
	}
	m := run.Micro
	fmt.Fprintf(&b, "micro: tokenize %.1f MB/s (%.2f allocs/line)  cuckoo %.1f ns/lookup",
		m.TokenizeMBPerS, m.TokenizeAllocsPerLine, m.CuckooLookupNs)
	if m.CuckooBatchNs > 0 {
		fmt.Fprintf(&b, " (batch %.1f ns/tok)", m.CuckooBatchNs)
	}
	fmt.Fprintf(&b, "\nmicro: lzah decode %.1f MB/s (%.2f allocs/block)  compress %.1f MB/s  filter-warm %.1f MB/s\n",
		m.LZAHDecodeMBPerS, m.LZAHDecodeAllocsPerBlock, m.LZAHCompressMBPerS, m.FilterWarmMBPerS)
	return b.String()
}
