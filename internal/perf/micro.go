package perf

import (
	"fmt"
	"runtime"
	"time"

	"mithrilog/internal/cuckoo"
	"mithrilog/internal/filter"
	"mithrilog/internal/loggen"
	"mithrilog/internal/lzah"
	"mithrilog/internal/query"
	"mithrilog/internal/tokenizer"
)

// microQuery is the representative filter configuration for the cuckoo
// and hash-filter micro legs: two intersection sets mixing common and
// rare tokens, a negation, and a disjunction.
const microQuery = `(kernel: AND error AND NOT recovery) OR (daemon AND session)`

// microBlockRawBytes sizes the raw chunks the LZAH micro leg compresses;
// at the typical ~3x ratio a chunk lands near the 4 KiB page the engine
// writes, so the leg exercises page-shaped blocks.
const microBlockRawBytes = 12 * 1024

// measureMicro runs the single-goroutine inner-loop benchmarks.
func measureMicro(ds *loggen.Dataset, opts Options) (MicroResults, error) {
	var m MicroResults
	text := ds.Text()
	lines := len(ds.Lines)

	iters := 8
	if opts.Quick {
		iters = 2
	}

	// --- Tokenizer: stream the whole text through one array, reusing the
	// word buffer (steady state: the zero-alloc contract).
	arr := tokenizer.NewArray(0, 0)
	words := arr.TokenizeBlock(nil, text) // warm: reach steady-state capacity
	start := time.Now()
	for i := 0; i < iters; i++ {
		words = arr.TokenizeBlock(words[:0], text)
	}
	m.TokenizeMBPerS = mbPerS(int64(len(text))*int64(iters), time.Since(start))
	perLine := allocsPerOp(4, func() {
		words = arr.TokenizeBlock(words[:0], text)
	})
	m.TokenizeAllocsPerLine = perLine / float64(lines)

	// --- Cuckoo: single lookups over the tokenized stream (hits and
	// misses in dataset proportions).
	q, err := query.Parse(microQuery)
	if err != nil {
		return m, err
	}
	table, err := cuckoo.Compile(q, cuckoo.Config{})
	if err != nil {
		return m, err
	}
	toks := tokenStream(words)
	if len(toks) == 0 {
		return m, fmt.Errorf("perf: token stream empty")
	}
	lookupAll := func() {
		for _, tok := range toks {
			table.LookupBytes(tok)
		}
	}
	lookupAll() // warm
	start = time.Now()
	for i := 0; i < iters; i++ {
		lookupAll()
	}
	m.CuckooLookupNs = nsPerOp(int64(len(toks))*int64(iters), time.Since(start))
	m.CuckooAllocsPerLookup = allocsPerOp(2, lookupAll) / float64(len(toks))
	m.CuckooBatchNs = measureCuckooBatch(table, toks, iters)

	// --- LZAH: compress page-shaped chunks, then decode them into a
	// reused arena pre-grown to the uncompressed size.
	codec := lzah.NewCodec(lzah.Options{})
	var blocks [][]byte
	var rawTotal int64
	for off := 0; off < len(text); off += microBlockRawBytes {
		end := off + microBlockRawBytes
		if end > len(text) {
			end = len(text)
		}
		blocks = append(blocks, codec.Compress(nil, text[off:end]))
		rawTotal += int64(end - off)
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		for off := 0; off < len(text); off += microBlockRawBytes {
			end := off + microBlockRawBytes
			if end > len(text) {
				end = len(text)
			}
			codec.Compress(compressScratch[:0], text[off:end])
		}
	}
	m.LZAHCompressMBPerS = mbPerS(rawTotal*int64(iters), time.Since(start))

	dst := make([]byte, 0, microBlockRawBytes)
	decodeAll := func() error {
		for _, b := range blocks {
			var derr error
			dst, derr = codec.Decompress(dst[:0], b)
			if derr != nil {
				return derr
			}
		}
		return nil
	}
	if err := decodeAll(); err != nil {
		return m, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := decodeAll(); err != nil {
			return m, err
		}
	}
	m.LZAHDecodeMBPerS = mbPerS(rawTotal*int64(iters), time.Since(start))
	var decErr error
	m.LZAHDecodeAllocsPerBlock = allocsPerOp(2, func() {
		if err := decodeAll(); err != nil {
			decErr = err
		}
	}) / float64(len(blocks))
	if decErr != nil {
		return m, decErr
	}

	// --- Filter warm path: hash-filter pass over pre-tokenized blocks
	// (what a page-cache hit pays).
	pipe := filter.NewPipeline(filter.PipelineConfig{})
	if err := pipe.Configure(q); err != nil {
		return m, err
	}
	var tbs []*filter.TokenizedBlock
	for off := 0; off < len(text); off += microBlockRawBytes {
		end := off + microBlockRawBytes
		if end > len(text) {
			end = len(text)
		}
		tbs = append(tbs, pipe.Tokenize(text[off:end]))
	}
	filterAll := func() error {
		for _, tb := range tbs {
			if _, ferr := pipe.FilterTokenized(tb); ferr != nil {
				return ferr
			}
		}
		return nil
	}
	if err := filterAll(); err != nil {
		return m, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := filterAll(); err != nil {
			return m, err
		}
	}
	m.FilterWarmMBPerS = mbPerS(rawTotal*int64(iters), time.Since(start))
	return m, nil
}

// compressScratch is a reused compression destination so the compress
// micro leg measures the codec, not allocator growth.
var compressScratch = make([]byte, 0, 2*microBlockRawBytes)

// tokenStream extracts complete single-word tokens from a word stream as
// byte slices aliasing the words (multi-word tokens are skipped: the
// micro leg measures lookup cost, not reassembly).
func tokenStream(words []tokenizer.Word) [][]byte {
	var out [][]byte
	for i := range words {
		w := &words[i]
		if w.LastOfToken && w.Len > 0 {
			out = append(out, w.Data[:w.Len])
		}
	}
	return out
}

// mbPerS converts processed bytes and elapsed time to MB/s.
func mbPerS(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / elapsed.Seconds()
}

// nsPerOp converts an op count and elapsed time to ns/op.
func nsPerOp(ops int64, elapsed time.Duration) float64 {
	if ops <= 0 {
		return 0
	}
	return float64(elapsed.Nanoseconds()) / float64(ops)
}

// allocsPerOp reports the average heap allocations per call of f over n
// calls, in the spirit of testing.AllocsPerRun: single OS thread view,
// one warm-up call, then a mallocs delta.
func allocsPerOp(n int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(n)
}

// allocsAndTime runs f once, reporting its heap allocations and wall time.
func allocsAndTime(f func()) (allocs uint64, elapsed time.Duration) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, elapsed
}

// measureCuckooBatch measures the batched 8-at-a-time lookup path in ns
// per token; it returns 0 when the batch API is unavailable (runs
// recorded before the raw-speed pass).
func measureCuckooBatch(table *cuckoo.Table, toks [][]byte, iters int) float64 {
	return cuckooBatchNs(table, toks, iters)
}
