package perf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleRun builds a minimal structurally-valid run for schema tests.
func sampleRun(label string) Run {
	return Run{
		Label:     label,
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		CPUs:      1,
		Workload: WorkloadSpec{
			Dataset: "liberty2", Lines: 100, RawBytes: 8000,
			QueryMix: 4, Rounds: 8, CacheBytes: 1 << 20,
		},
		Ingest: IngestResult{WallMs: 10, MBPerS: 20, LinesPerS: 1e4, AllocsPerLine: 5},
		Queries: []QueryPoint{
			{InFlight: 1, Cache: "cold", Queries: 8, WallMs: 5, QPS: 100, P50Us: 900, P99Us: 1500},
			{InFlight: 1, Cache: "warm", Queries: 8, WallMs: 2, QPS: 400, P50Us: 200, P99Us: 600},
		},
		Micro: MicroResults{
			TokenizeMBPerS: 300, CuckooLookupNs: 9,
			LZAHDecodeMBPerS: 700, LZAHCompressMBPerS: 250, FilterWarmMBPerS: 300,
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep := &Report{Schema: Schema, Bench: 6, Runs: []Run{sampleRun("a"), sampleRun("b")}}
	if err := WriteReport(path, rep); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("report file should end with a newline")
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if got.Schema != Schema || got.Bench != 6 || len(got.Runs) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	last, ok := got.Last()
	if !ok || last.Label != "b" {
		t.Fatalf("Last = %q, %v; want b, true", last.Label, ok)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeReport(strings.NewReader(`{"schema":"mithrilog.bench/1","runs":[],"surprise":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"bad schema", func(r *Report) { r.Schema = "mithrilog.bench/0" }},
		{"no runs", func(r *Report) { r.Runs = nil }},
		{"missing label", func(r *Report) { r.Runs[0].Label = "" }},
		{"no machine", func(r *Report) { r.Runs[0].CPUs = 0 }},
		{"no workload", func(r *Report) { r.Runs[0].Workload.Lines = 0 }},
		{"no ingest", func(r *Report) { r.Runs[0].Ingest.MBPerS = 0 }},
		{"no queries", func(r *Report) { r.Runs[0].Queries = nil }},
		{"bad cache tag", func(r *Report) { r.Runs[0].Queries[0].Cache = "tepid" }},
		{"dup point", func(r *Report) { r.Runs[0].Queries[1] = r.Runs[0].Queries[0] }},
		{"no micro", func(r *Report) { r.Runs[0].Micro.TokenizeMBPerS = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := &Report{Schema: Schema, Runs: []Run{sampleRun("x")}}
			tc.mutate(rep)
			if err := rep.Validate(); err == nil {
				t.Errorf("%s: expected validation error", tc.name)
			}
		})
	}
}

func TestSortQueriesCanonicalOrder(t *testing.T) {
	run := sampleRun("x")
	run.Queries = []QueryPoint{
		{InFlight: 8, Cache: "warm", Queries: 1, QPS: 1},
		{InFlight: 1, Cache: "warm", Queries: 1, QPS: 1},
		{InFlight: 8, Cache: "cold", Queries: 1, QPS: 1},
		{InFlight: 1, Cache: "cold", Queries: 1, QPS: 1},
	}
	run.SortQueries()
	want := []struct {
		n     int
		cache string
	}{{1, "cold"}, {8, "cold"}, {1, "warm"}, {8, "warm"}}
	for i, w := range want {
		if run.Queries[i].InFlight != w.n || run.Queries[i].Cache != w.cache {
			t.Fatalf("order[%d] = %d/%s, want %d/%s",
				i, run.Queries[i].InFlight, run.Queries[i].Cache, w.n, w.cache)
		}
	}
}

func TestDiffDirectionsAndGate(t *testing.T) {
	old, cur := sampleRun("old"), sampleRun("new")
	// Improvements: throughput up, latency and allocs down.
	cur.Ingest.MBPerS = old.Ingest.MBPerS * 2
	cur.Ingest.AllocsPerLine = old.Ingest.AllocsPerLine / 2
	cur.Queries[1].QPS = old.Queries[1].QPS * 1.5
	deltas, regressed := Diff(&old, &cur, 10)
	if regressed {
		t.Fatal("improvement flagged as regression")
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["ingest.mb_per_s"]; d.Ratio() < 1.99 || d.ChangePct < 99 {
		t.Errorf("ingest.mb_per_s delta = %+v", d)
	}
	if d := byName["ingest.allocs_per_line"]; d.Ratio() < 1.99 || d.ChangePct < 49 {
		t.Errorf("allocs_per_line should improve when it drops: %+v", d)
	}

	// A >10% throughput drop must gate; a 5% drop must not.
	slow := sampleRun("slow")
	slow.Queries[1].QPS = old.Queries[1].QPS * 0.8
	if _, reg := Diff(&old, &slow, 10); !reg {
		t.Error("20% qps drop not flagged")
	}
	slight := sampleRun("slight")
	slight.Queries[1].QPS = old.Queries[1].QPS * 0.95
	if _, reg := Diff(&old, &slight, 10); reg {
		t.Error("5% qps drop flagged at 10% gate")
	}
}

func TestDiffSkipsAbsentMetrics(t *testing.T) {
	old, cur := sampleRun("old"), sampleRun("new")
	old.Micro.CuckooBatchNs = 0 // recorded before the batch API existed
	cur.Micro.CuckooBatchNs = 3
	deltas, _ := Diff(&old, &cur, 10)
	for _, d := range deltas {
		if d.Name == "micro.cuckoo_batch_ns" {
			t.Fatal("absent metric should be skipped")
		}
	}
}

func TestComparable(t *testing.T) {
	a, b := sampleRun("a"), sampleRun("b")
	if err := Comparable(&a, &b); err != nil {
		t.Fatalf("matching runs: %v", err)
	}
	b.CPUs = 64
	if err := Comparable(&a, &b); err == nil {
		t.Error("machine mismatch not detected")
	}
	b = sampleRun("b")
	b.Workload.Lines = 999
	if err := Comparable(&a, &b); err == nil {
		t.Error("workload mismatch not detected")
	}
}

// TestMeasureTiny runs the real harness end to end at minimal scale and
// checks the produced run validates inside a complete report.
func TestMeasureTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full matrix")
	}
	run, err := Measure(Options{
		Label: "test", Quick: true, Lines: 1200, Rounds: 4,
		InFlight: []int{1, 2}, Shards: []int{1, 4},
	})
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	rep := &Report{Schema: Schema, Runs: []Run{run}}
	if err := rep.Validate(); err != nil {
		t.Fatalf("tiny run does not validate: %v", err)
	}
	// 2 in-flight x 2 caches x 2 fleet widths.
	if len(run.Queries) != 8 {
		t.Fatalf("expected 8 matrix points, got %d", len(run.Queries))
	}
	if run.Ingest.AllocsPerLine <= 0 {
		t.Error("ingest allocs not recorded")
	}
	if _, ok := run.Point(2, "warm"); !ok {
		t.Error("warm @2 point missing")
	}
	if _, ok := run.PointAt(2, "warm", 4); !ok {
		t.Error("sharded warm @2 point missing")
	}
	if len(run.Regex) != len(regexMix) {
		t.Fatalf("expected %d regex points, got %d", len(regexMix), len(run.Regex))
	}
	for _, p := range run.Regex {
		if p.Pattern == "exceeded" {
			if p.Prefiltered {
				t.Errorf("∅-factor control %q took the prefiltered path", p.Pattern)
			}
			if p.PagesSkippedPct != 0 {
				t.Errorf("fallback %q skipped %.1f%% pages", p.Pattern, p.PagesSkippedPct)
			}
		} else if !p.Prefiltered {
			t.Errorf("regex point %q did not prefilter", p.Pattern)
		}
	}
}
