package sched

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mithrilog/internal/filter"
	"mithrilog/internal/obs"
	"mithrilog/internal/storage"
)

// PageCache is the byte-bounded LRU implementation of core.PageCache: a
// model of DRAM on the accelerator side of the device holding decompressed
// data pages together with their tokenized word streams. A hit saves the
// internal-link flash read, the LZAH decompression, and the tokenization —
// the cached page re-enters the filter pipeline directly at the hash
// filters, which is where repeated scans of hot pages spend their time;
// the cross-query reuse the single-query engine cannot exploit.
//
// Entries are whole tokenized pages keyed by storage.PageID. Eviction is
// strict LRU by total resident bytes (text plus token stream; see
// filter.TokenizedBlock.MemSize). InvalidateAll (called by the engine at
// every flush boundary) empties the cache. All methods are safe for
// concurrent use; Get returns the cached block itself, which callers must
// treat as read-only (the engine's scan path only reads).
type PageCache struct {
	mu       sync.Mutex
	maxBytes int64 // immutable after New (read before the lock in Put)
	curBytes int64 // guarded by mu
	// ll is the recency list (front = most recently used). guarded by mu
	ll    *list.List
	items map[storage.PageID]*list.Element // guarded by mu

	hits, misses, evictions, invalidations atomic.Uint64
}

type cacheEntry struct {
	id storage.PageID
	tb *filter.TokenizedBlock
}

// NewPageCache creates a cache bounded to maxBytes of resident page data.
// maxBytes must be positive; a single page larger than the bound is simply
// never retained.
func NewPageCache(maxBytes int64) *PageCache {
	return &PageCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[storage.PageID]*list.Element),
	}
}

// Get returns the cached tokenized page, promoting it to most recently
// used. The returned block is shared and must not be modified.
func (c *PageCache) Get(id storage.PageID) (*filter.TokenizedBlock, bool) {
	c.mu.Lock()
	el, ok := c.items[id]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	tb := el.Value.(*cacheEntry).tb
	c.mu.Unlock()
	c.hits.Add(1)
	return tb, true
}

// Put inserts a tokenized page, taking ownership of the block. Inserting
// an already-present page promotes the existing entry (concurrent queries
// miss-and-decode the same page; the first insert wins and later copies
// are dropped — both hold identical content). Pages wider than the byte
// bound are not retained.
func (c *PageCache) Put(id storage.PageID, tb *filter.TokenizedBlock) {
	if tb == nil {
		return
	}
	size := tb.MemSize()
	if size == 0 || size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[id] = c.ll.PushFront(&cacheEntry{id: id, tb: tb})
	c.curBytes += size
	for c.curBytes > c.maxBytes {
		c.evictOldest()
	}
}

// evictOldest drops the LRU entry; the caller holds c.mu.
func (c *PageCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.id)
	c.curBytes -= ent.tb.MemSize()
	c.evictions.Add(1)
}

// InvalidateAll empties the cache. The engine calls it on every flush
// boundary so no query can observe pages inconsistent with storage.
func (c *PageCache) InvalidateAll() {
	c.mu.Lock()
	c.ll.Init()
	c.items = make(map[storage.PageID]*list.Element)
	c.curBytes = 0
	c.mu.Unlock()
	c.invalidations.Add(1)
}

// Len reports the number of cached pages.
func (c *PageCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the resident bytes currently held (text plus token
// streams).
func (c *PageCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}

// Stats reports the cache's lifetime counters (hits, misses, evictions,
// invalidations).
func (c *PageCache) Stats() (hits, misses, evictions, invalidations uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), c.invalidations.Load()
}

// RegisterMetrics publishes the cache's counters and occupancy gauges into
// reg (see OBSERVABILITY.md). Safe to call once per registry; the obs
// layer's get-or-create semantics make duplicate names from a second cache
// on the same registry a programming error, consistent with the rest of
// the module.
func (c *PageCache) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("mithrilog_cache_hits_total",
		"Decompressed-page cache hits (page served without flash read, decompression, or tokenization).",
		nil, func() float64 { return float64(c.hits.Load()) })
	reg.CounterFunc("mithrilog_cache_misses_total",
		"Decompressed-page cache misses (page read, decompressed, and tokenized from flash).",
		nil, func() float64 { return float64(c.misses.Load()) })
	reg.CounterFunc("mithrilog_cache_evictions_total",
		"Pages evicted from the decompressed-page cache by the LRU byte bound.",
		nil, func() float64 { return float64(c.evictions.Load()) })
	reg.CounterFunc("mithrilog_cache_invalidations_total",
		"Whole-cache invalidations at ingest flush boundaries.",
		nil, func() float64 { return float64(c.invalidations.Load()) })
	reg.GaugeFunc("mithrilog_cache_bytes",
		"Resident bytes (text plus token streams) in the page cache.",
		nil, func() float64 { return float64(c.Bytes()) })
	reg.GaugeFunc("mithrilog_cache_pages",
		"Pages currently resident in the page cache.",
		nil, func() float64 { return float64(c.Len()) })
}
