package sched

import (
	"errors"
	"sync"
	"testing"

	"mithrilog/internal/obs"
)

func TestTenantLimiterQuota(t *testing.T) {
	l := NewTenantLimiter(2)
	l.RegisterMetrics(obs.NewRegistry())

	rel1, err := l.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := l.Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire("acme"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third acquire: err = %v, want ErrTenantQuota", err)
	}
	// Other tenants (and the anonymous bucket) have their own quotas.
	relB, err := l.Acquire("globex")
	if err != nil {
		t.Fatalf("other tenant blocked: %v", err)
	}
	relAnon, err := l.Acquire("")
	if err != nil {
		t.Fatalf("anonymous bucket blocked: %v", err)
	}
	if n := l.ActiveTenants(); n != 3 {
		t.Fatalf("active tenants = %d, want 3", n)
	}
	rel1()
	if _, err := l.Acquire("acme"); err != nil {
		t.Fatalf("after release: %v", err)
	}
	rel2()
	relB()
	relAnon()
}

func TestTenantLimiterDefaultsAndDrain(t *testing.T) {
	l := NewTenantLimiter(0)
	if l.Max() != DefaultTenantInFlight {
		t.Fatalf("Max() = %d, want %d", l.Max(), DefaultTenantInFlight)
	}
	rel, err := l.Acquire("t")
	if err != nil {
		t.Fatal(err)
	}
	if l.InFlight("t") != 1 {
		t.Fatalf("InFlight = %d", l.InFlight("t"))
	}
	rel()
	if l.InFlight("t") != 0 || l.ActiveTenants() != 0 {
		t.Fatalf("limiter not drained: %d in flight, %d active", l.InFlight("t"), l.ActiveTenants())
	}
}

// TestTenantLimiterConcurrent hammers one tenant from many goroutines and
// checks the quota is never exceeded (run under -race in CI).
func TestTenantLimiterConcurrent(t *testing.T) {
	const quota = 3
	l := NewTenantLimiter(quota)
	var mu sync.Mutex
	cur, peak := 0, 0
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rel, err := l.Acquire("hot")
				if err != nil {
					continue
				}
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				rel()
			}
		}()
	}
	wg.Wait()
	if peak > quota {
		t.Fatalf("observed %d concurrent holders, quota %d", peak, quota)
	}
	if l.ActiveTenants() != 0 {
		t.Fatal("limiter not drained after stress")
	}
}
