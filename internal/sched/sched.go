// Package sched fronts a core.Engine with a concurrent query scheduler:
// admission control (a bounded in-flight limit with a bounded wait queue
// and per-query deadlines), a shared decompressed-page cache (cache.go),
// and simulated arbitration for the accelerator's filter pipelines
// (hwsim.Arbiter). The engine itself already executes queries safely in
// parallel under a shared read lock; what it cannot do alone is say *no*
// to excess load, bound tail latency, share decompression work across
// queries, or account for the fact that the modeled hardware has exactly
// one set of physical pipelines. Those four concerns live here.
//
// The scheduler has no background goroutines: admission is a semaphore
// (a buffered channel of slots) acquired on the caller's goroutine, so
// there is nothing to shut down and cancellation composes directly with
// the caller's context.
package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"mithrilog/internal/core"
	"mithrilog/internal/hwsim"
	"mithrilog/internal/obs"
	"mithrilog/internal/query"
)

// ErrQueueFull reports a query rejected at admission: the in-flight limit
// was reached and the wait queue was already at QueueDepth. Callers should
// surface it as backpressure (HTTP 429), not as a query failure.
var ErrQueueFull = errors.New("sched: admission queue full")

// Config tunes the scheduler.
type Config struct {
	// MaxInFlight bounds the queries executing concurrently (default 8).
	MaxInFlight int
	// QueueDepth bounds the queries waiting for an execution slot beyond
	// MaxInFlight; arrivals past the bound fail fast with ErrQueueFull
	// (default 64).
	QueueDepth int
	// Timeout is the per-query deadline applied on admission, covering
	// both queue wait and execution; zero disables it. The deadline is
	// enforced between page scans, so a timed-out query aborts with
	// context.DeadlineExceeded instead of finishing its candidate set.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// Scheduler serializes admission for one engine. Create with New; the
// zero value is not usable.
type Scheduler struct {
	eng *core.Engine
	cfg Config

	// slots is the execution semaphore: a send acquires, a receive
	// releases.
	slots chan struct{}
	// waiting counts queries blocked on a slot, bounded by QueueDepth.
	waiting atomic.Int64

	// arb accounts simulated pipeline contention between in-flight
	// queries.
	arb hwsim.Arbiter

	admitted *obs.Counter
	rejected *obs.Counter
	timeouts *obs.Counter
	waitSec  *obs.Histogram
	queueSim *obs.Counter
}

// New builds a scheduler over eng and registers its queue metrics into
// the engine's registry.
func New(eng *core.Engine, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		eng:   eng,
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxInFlight),
	}
	reg := eng.Obs()
	s.admitted = reg.Counter("mithrilog_sched_admitted_total",
		"Queries admitted past the scheduler's in-flight limit.")
	s.rejected = reg.Counter("mithrilog_sched_rejected_total",
		"Queries rejected at admission because the wait queue was full.")
	s.timeouts = reg.Counter("mithrilog_sched_timeouts_total",
		"Queries aborted by the per-query deadline (in queue or mid-scan).")
	s.waitSec = reg.Histogram("mithrilog_sched_wait_seconds",
		"Host wall time queries spent waiting for an execution slot.",
		obs.DurationBuckets())
	s.queueSim = reg.Counter("mithrilog_sched_queue_sim_seconds_total",
		"Simulated time queries spent waiting for the filter pipelines held by other in-flight queries.")
	reg.GaugeFunc("mithrilog_sched_in_flight",
		"Queries currently holding an execution slot.",
		nil, func() float64 { return float64(len(s.slots)) })
	reg.GaugeFunc("mithrilog_sched_queued",
		"Queries currently waiting for an execution slot.",
		nil, func() float64 { return float64(s.waiting.Load()) })
	return s
}

// Engine returns the wrapped engine, for callers needing direct access
// (ingest, stats — anything that is not a query).
func (s *Scheduler) Engine() *core.Engine { return s.eng }

// acquire claims an execution slot, waiting in the bounded queue if the
// in-flight limit is reached. It returns the release function, or
// ErrQueueFull / the context's error.
func (s *Scheduler) acquire(ctx context.Context) (release func(), err error) {
	release = func() { <-s.slots }
	select {
	case s.slots <- struct{}{}:
		s.admitted.Inc()
		return release, nil
	default:
	}
	if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		s.rejected.Inc()
		return nil, ErrQueueFull
	}
	defer s.waiting.Add(-1)
	start := time.Now()
	select {
	case s.slots <- struct{}{}:
		s.waitSec.ObserveSince(start)
		s.admitted.Inc()
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deadline applies the configured per-query timeout. ctx must be non-nil:
// the scheduler sits below the facade, and the ctxflow invariant (LINT.md)
// requires everything below the facade to thread its caller's context
// rather than minting context.Background() — the facade is the one place a
// missing context is replaced.
func (s *Scheduler) deadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(ctx, s.cfg.Timeout)
	}
	return ctx, func() {}
}

// note counts a deadline abort; other errors pass through untouched.
func (s *Scheduler) note(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		s.timeouts.Inc()
	}
	return err
}

// Search runs q through admission control and the engine, then accounts
// simulated pipeline contention: with k queries resident on the device,
// this query's isolated device-busy time stretches by QueueTime =
// busy×(k−1) (see hwsim.Arbiter), reported in the result and folded into
// SimElapsed.
func (s *Scheduler) Search(ctx context.Context, q query.Query, opts core.SearchOptions) (core.SearchResult, error) {
	ctx, cancel := s.deadline(ctx)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return core.SearchResult{}, s.note(err)
	}
	defer release()
	opts.Ctx = ctx
	sharers := s.arb.Enter()
	defer s.arb.Exit()
	res, err := s.eng.Search(q, opts)
	if err != nil {
		return res, s.note(err)
	}
	if res.Offloaded {
		busy := res.StreamTime
		if res.FilterTime > busy {
			busy = res.FilterTime
		}
		res.QueueTime = hwsim.QueueTime(busy, sharers)
		res.SimElapsed += res.QueueTime
		s.queueSim.Add(res.QueueTime.Seconds())
	}
	return res, nil
}

// SearchRegex runs a regex scan under admission control with the
// scheduler's deadline threaded into the page loop. A prefiltered scan
// runs candidate pages through the filter-pipeline complex just like a
// token query, so it holds the arbiter and pays contention QueueTime; a
// full-scan fallback bypasses the token engine (pages are forwarded to
// the host) and reports no queueing.
func (s *Scheduler) SearchRegex(ctx context.Context, pattern string, opts core.RegexOptions) (core.RegexResult, error) {
	ctx, cancel := s.deadline(ctx)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return core.RegexResult{}, s.note(err)
	}
	defer release()
	opts.Ctx = ctx
	sharers := s.arb.Enter()
	defer s.arb.Exit()
	res, err := s.eng.SearchRegexOpts(pattern, opts)
	if err != nil {
		return res, s.note(err)
	}
	if res.Prefiltered {
		busy := res.StreamTime
		if res.FilterTime > busy {
			busy = res.FilterTime
		}
		res.QueueTime = hwsim.QueueTime(busy, sharers)
		res.SimElapsed += res.QueueTime
		s.queueSim.Add(res.QueueTime.Seconds())
	}
	return res, nil
}
