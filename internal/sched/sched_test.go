package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mithrilog/internal/core"
	"mithrilog/internal/filter"
	"mithrilog/internal/query"
)

// pageData fabricates a cache entry whose MemSize is exactly n bytes
// (text only, no token stream), keeping the byte-bound arithmetic in the
// LRU tests direct.
func pageData(n int, fill byte) *filter.TokenizedBlock {
	d := make([]byte, n)
	for i := range d {
		d[i] = fill
	}
	return &filter.TokenizedBlock{Block: d}
}

func TestPageCacheLRU(t *testing.T) {
	c := NewPageCache(250)
	c.Put(1, pageData(100, 'a'))
	c.Put(2, pageData(100, 'b'))
	// Touch 1 so 2 is the LRU victim.
	if _, ok := c.Get(1); !ok {
		t.Fatal("page 1 missing")
	}
	c.Put(3, pageData(100, 'c'))
	if _, ok := c.Get(2); ok {
		t.Fatal("page 2 should have been evicted (LRU)")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("page 1 evicted despite recent use")
	}
	if got, ok := c.Get(3); !ok || got.Block[0] != 'c' {
		t.Fatalf("page 3 lost or corrupt: %v %q", ok, got.Block[:1])
	}
	if c.Len() != 2 || c.Bytes() != 200 {
		t.Fatalf("occupancy %d pages / %d bytes, want 2 / 200", c.Len(), c.Bytes())
	}
	hits, misses, evictions, invalidations := c.Stats()
	if hits != 3 || misses != 1 || evictions != 1 || invalidations != 0 {
		t.Fatalf("stats %d/%d/%d/%d, want 3/1/1/0", hits, misses, evictions, invalidations)
	}
	c.InvalidateAll()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("invalidate left residue")
	}
	if _, _, _, inv := c.Stats(); inv != 1 {
		t.Fatal("invalidation not counted")
	}
}

func TestPageCacheRejectsOversized(t *testing.T) {
	c := NewPageCache(64)
	c.Put(1, pageData(65, 'x'))
	if c.Len() != 0 {
		t.Fatal("oversized page retained")
	}
	c.Put(2, nil)
	c.Put(3, &filter.TokenizedBlock{})
	if c.Len() != 0 {
		t.Fatal("empty page retained")
	}
}

// buildSched assembles an engine (with cache) and scheduler over n
// generated lines, every one containing the token "needle".
func buildSched(t *testing.T, n int, cfg Config) (*Scheduler, *PageCache) {
	t.Helper()
	cache := NewPageCache(64 << 20)
	eng := core.NewEngine(core.Config{PageCache: cache})
	if err := eng.Ingest(needleLines(0, n)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	return New(eng, cfg), cache
}

func needleLines(start, n int) [][]byte {
	lines := make([][]byte, n)
	for i := range lines {
		lines[i] = []byte(fmt.Sprintf("needle event worker%d seq %d", (start+i)%7, start+i))
	}
	return lines
}

func TestSchedulerQueueFull(t *testing.T) {
	s, _ := buildSched(t, 500, Config{MaxInFlight: 1, QueueDepth: 1})
	// Occupy the single execution slot.
	s.slots <- struct{}{}
	defer func() { <-s.slots }()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	waiterErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		// Fills the one queue position, then blocks until canceled.
		_, err := s.Search(ctx, query.MustParse(`needle`), core.SearchOptions{})
		waiterErr <- err
	}()
	// Wait until the waiter is counted.
	for s.waiting.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Search(context.Background(), query.MustParse(`needle`), core.SearchOptions{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	cancel()
	wg.Wait()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued query should report cancellation, got %v", err)
	}
}

func TestSchedulerTimeout(t *testing.T) {
	s, _ := buildSched(t, 500, Config{MaxInFlight: 1, Timeout: 20 * time.Millisecond})
	s.slots <- struct{}{} // pin the slot so the query times out in queue
	defer func() { <-s.slots }()
	_, err := s.Search(context.Background(), query.MustParse(`needle`), core.SearchOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
}

// TestQueueTimeAccounting pins the arbiter model: a sole query pays no
// queueing, and a query sharing the device with k-1 residents pays
// busy×(k−1), folded into SimElapsed.
func TestQueueTimeAccounting(t *testing.T) {
	s, _ := buildSched(t, 2000, Config{})
	q := query.MustParse(`needle`)
	solo, err := s.Search(context.Background(), q, core.SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if solo.QueueTime != 0 {
		t.Fatalf("sole query charged %v of queueing", solo.QueueTime)
	}

	// Simulate one other resident query for the duration of this one.
	s.arb.Enter()
	defer s.arb.Exit()
	shared, err := s.Search(context.Background(), q, core.SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	busy := shared.StreamTime
	if shared.FilterTime > busy {
		busy = shared.FilterTime
	}
	if shared.QueueTime != busy {
		t.Fatalf("with 2 sharers queue time = %v, want the device-busy time %v", shared.QueueTime, busy)
	}
	if shared.SimElapsed <= solo.SimElapsed {
		t.Fatalf("contended SimElapsed %v not above solo %v", shared.SimElapsed, solo.SimElapsed)
	}
}

// TestConcurrentSearchIngestStress hammers one scheduler with mixed
// readers and a writer (run it under -race): reader invariants are
// monotonic visibility — a search started after k lines were flushed
// reports at least k matches, and never more than were ingested by the
// time it returned — which a stale cached page surviving an ingest-flush
// invalidation would violate (the final exact-count checks would, too).
func TestConcurrentSearchIngestStress(t *testing.T) {
	const (
		readers   = 6
		batches   = 40
		batchSize = 100
	)
	s, cache := buildSched(t, batchSize, Config{MaxInFlight: 2 * readers})
	eng := s.Engine()
	q := query.MustParse(`needle`)

	var flushed atomic.Int64  // lines visible in storage
	var ingested atomic.Int64 // lines handed to Ingest
	flushed.Store(batchSize)
	ingested.Store(batchSize)

	var wg sync.WaitGroup
	done := make(chan struct{})
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(done)
		for b := 1; b < batches; b++ {
			start := int(ingested.Load())
			ingested.Add(batchSize)
			if err := eng.Ingest(needleLines(start, batchSize)); err != nil {
				errs <- err
				return
			}
			if b%4 == 0 {
				if err := eng.Flush(); err != nil {
					errs <- err
					return
				}
			}
			// Lines are visible once flushed — explicitly above, or by
			// any search's implicit flush; conservatively publish only
			// what an explicit flush guaranteed.
			if b%4 == 0 {
				flushed.Store(ingested.Load())
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				lower := flushed.Load()
				res, err := s.Search(context.Background(), q, core.SearchOptions{NoIndex: true})
				upper := ingested.Load()
				if err != nil {
					errs <- fmt.Errorf("reader: %w", err)
					return
				}
				if int64(res.Matches) < lower || int64(res.Matches) > upper {
					errs <- fmt.Errorf("reader saw %d matches outside [%d, %d]", res.Matches, lower, upper)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent exactness: everything ingested must now be visible, from
	// flash and — identically — from the warmed cache.
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	total := int(ingested.Load())
	cold, err := s.Search(context.Background(), q, core.SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Matches != total {
		t.Fatalf("post-stress count %d, want %d", cold.Matches, total)
	}
	warm, err := s.Search(context.Background(), q, core.SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Matches != total {
		t.Fatalf("cached post-stress count %d, want %d", warm.Matches, total)
	}
	if warm.CachedPages == 0 {
		t.Fatal("warm scan hit no cached pages")
	}
	hits, _, _, invalidations := cache.Stats()
	if hits == 0 {
		t.Fatal("stress run never hit the cache")
	}
	if invalidations == 0 {
		t.Fatal("ingest flushes never invalidated the cache")
	}
}

// TestCacheInvalidationOnFlush is the targeted stale-page check: a page
// cached before a flush must not serve a later query, because the flush
// boundary invalidates the cache wholesale.
func TestCacheInvalidationOnFlush(t *testing.T) {
	s, cache := buildSched(t, 300, Config{})
	q := query.MustParse(`needle`)
	if _, err := s.Search(context.Background(), q, core.SearchOptions{NoIndex: true}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("first scan cached nothing")
	}
	if err := s.Engine().Ingest(needleLines(300, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Engine().Flush(); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("flush left %d cached pages", cache.Len())
	}
	res, err := s.Search(context.Background(), q, core.SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 350 {
		t.Fatalf("post-flush scan counted %d, want 350", res.Matches)
	}
	if res.CachedPages != 0 {
		t.Fatalf("post-flush scan served %d pages from an invalidated cache", res.CachedPages)
	}
}

// TestSearchRegexAdmission exercises the regex path through the
// scheduler (slot accounting must balance).
func TestSearchRegexAdmission(t *testing.T) {
	s, _ := buildSched(t, 200, Config{MaxInFlight: 2})
	res, err := s.SearchRegex(context.Background(), `needle`, core.RegexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 200 {
		t.Fatalf("regex matched %d, want 200", res.Matches)
	}
	if got := len(s.slots); got != 0 {
		t.Fatalf("%d slots leaked", got)
	}
}
