package sched

import (
	"errors"
	"sync"

	"mithrilog/internal/obs"
)

// ErrTenantQuota reports a query rejected at admission because its tenant
// already holds its full in-flight quota. Like ErrQueueFull it is
// backpressure, not failure: callers surface it as HTTP 429.
var ErrTenantQuota = errors.New("sched: tenant quota exceeded")

// DefaultTenantInFlight is the per-tenant concurrent-query quota when the
// config does not override it.
const DefaultTenantInFlight = 4

// TenantLimiter enforces a per-tenant in-flight quota in front of the
// scheduler's global admission queue, so one tenant's burst cannot occupy
// every execution slot and starve the rest. It is deliberately simpler
// than the slot semaphore: quota rejections fail fast (no per-tenant wait
// queue), because a tenant at quota already has MaxInFlight queries'
// worth of latency queued behind its own traffic.
//
// The zero value is not usable; create with NewTenantLimiter. All methods
// are safe for concurrent use; the mutex guards only map bookkeeping and
// is never held across a shard call or channel operation.
type TenantLimiter struct {
	max int

	mu       sync.Mutex
	inflight map[string]int

	admitted *obs.Counter
	rejected *obs.CounterVec
}

// NewTenantLimiter builds a limiter allowing max concurrent queries per
// tenant (DefaultTenantInFlight when max <= 0). The untenanted tenant ""
// is a bucket like any other, so anonymous traffic is bounded too.
func NewTenantLimiter(max int) *TenantLimiter {
	if max <= 0 {
		max = DefaultTenantInFlight
	}
	return &TenantLimiter{max: max, inflight: make(map[string]int)}
}

// Max returns the per-tenant quota.
func (l *TenantLimiter) Max() int { return l.max }

// RegisterMetrics publishes the limiter's counters and occupancy gauges
// into reg. The rejection counter carries the tenant label so a noisy
// neighbor is visible by name; totals stay unlabeled.
func (l *TenantLimiter) RegisterMetrics(reg *obs.Registry) {
	l.admitted = reg.Counter("mithrilog_sched_tenant_admitted_total",
		"Queries admitted under their tenant's in-flight quota.")
	l.rejected = reg.CounterVec("mithrilog_sched_tenant_rejected_total",
		"Queries rejected because their tenant's in-flight quota was full.",
		"tenant")
	reg.GaugeFunc("mithrilog_sched_tenants_active",
		"Tenants currently holding at least one execution slot.",
		nil, func() float64 { return float64(l.ActiveTenants()) })
}

// ActiveTenants counts tenants with at least one in-flight query.
func (l *TenantLimiter) ActiveTenants() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.inflight)
}

// InFlight returns one tenant's current in-flight count.
func (l *TenantLimiter) InFlight(tenant string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight[tenant]
}

// Acquire claims one slot of the tenant's quota, returning the release
// function, or ErrTenantQuota if the tenant is at its limit. Release is
// idempotent-unsafe by design (call exactly once, typically deferred).
func (l *TenantLimiter) Acquire(tenant string) (release func(), err error) {
	l.mu.Lock()
	if l.inflight[tenant] >= l.max {
		l.mu.Unlock()
		if l.rejected != nil {
			l.rejected.WithLabelValues(tenant).Inc()
		}
		return nil, ErrTenantQuota
	}
	l.inflight[tenant]++
	l.mu.Unlock()
	if l.admitted != nil {
		l.admitted.Inc()
	}
	return func() {
		l.mu.Lock()
		l.inflight[tenant]--
		if l.inflight[tenant] <= 0 {
			delete(l.inflight, tenant)
		}
		l.mu.Unlock()
	}, nil
}
