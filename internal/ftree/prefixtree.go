package ftree

import (
	"fmt"
	"sort"

	"mithrilog/internal/query"
)

// PrefixParams controls prefix-tree template extraction.
type PrefixParams struct {
	// MaxChildren marks a column as a variable (wildcard) field when its
	// fan-out exceeds this bound (default 8).
	MaxChildren int
	// MinSupport drops templates observed in fewer lines (default 2).
	MinSupport int
	// MaxDepth caps the number of leading columns considered (default 8).
	MaxDepth int
}

func (p PrefixParams) withDefaults() PrefixParams {
	if p.MaxChildren <= 0 {
		p.MaxChildren = 8
	}
	if p.MinSupport <= 0 {
		p.MinSupport = 2
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 8
	}
	return p
}

// PrefixTemplate is a template over leading token positions: Tokens[i]
// must appear at column Columns[i]. Wildcarded columns are simply absent.
type PrefixTemplate struct {
	ID      int
	Tokens  []string
	Columns []int
	Support int
}

// wildcard is the child key standing in for a pruned (variable) column.
const wildcard = "\x00*"

type pnode struct {
	count    int
	children map[string]*pnode
}

func newPNode() *pnode { return &pnode{children: make(map[string]*pnode)} }

// PrefixLibrary holds prefix-tree templates; compiled queries use the
// column-constrained term support the paper adds for prefix trees (§4.3).
type PrefixLibrary struct {
	params    PrefixParams
	templates []PrefixTemplate
	root      *pnode
}

// ExtractPrefix builds a prefix tree over the lines: level d of the tree
// corresponds to token column d, children keyed by the token at that
// column. Columns whose fan-out exceeds MaxChildren collapse into a
// wildcard child (a variable field such as a timestamp or node name), and
// under-supported branches are dropped.
func ExtractPrefix(lines [][]byte, p PrefixParams) *PrefixLibrary {
	p = p.withDefaults()
	lib := &PrefixLibrary{params: p, root: newPNode()}
	for _, line := range lines {
		toks := query.SplitTokens(string(line))
		if len(toks) > p.MaxDepth {
			toks = toks[:p.MaxDepth]
		}
		cur := lib.root
		cur.count++
		for _, t := range toks {
			next, ok := cur.children[t]
			if !ok {
				next = newPNode()
				cur.children[t] = next
			}
			next.count++
			cur = next
		}
	}
	lib.prune(lib.root)
	lib.enumerate()
	return lib
}

// prune collapses over-fanned levels into wildcards and drops rare paths.
func (l *PrefixLibrary) prune(n *pnode) {
	if len(n.children) > l.params.MaxChildren {
		// Variable column: merge all children into a wildcard whose
		// sub-trees are merged recursively.
		merged := newPNode()
		for _, c := range n.children {
			merged.count += c.count
			mergeInto(merged, c)
		}
		n.children = map[string]*pnode{wildcard: merged}
		l.prune(merged)
		return
	}
	for tok, child := range n.children {
		if child.count < l.params.MinSupport {
			delete(n.children, tok)
			continue
		}
		l.prune(child)
	}
}

// mergeInto merges src's children into dst (counts added, sub-trees merged).
func mergeInto(dst, src *pnode) {
	for tok, c := range src.children {
		d, ok := dst.children[tok]
		if !ok {
			d = newPNode()
			dst.children[tok] = d
		}
		d.count += c.count
		mergeInto(d, c)
	}
}

func (l *PrefixLibrary) enumerate() {
	l.templates = l.templates[:0]
	type step struct {
		tok string
		col int
	}
	var path []step
	var walk func(n *pnode, col int)
	walk = func(n *pnode, col int) {
		if len(n.children) == 0 {
			var toks []string
			var cols []int
			for _, s := range path {
				if s.tok != wildcard {
					toks = append(toks, s.tok)
					cols = append(cols, s.col)
				}
			}
			if len(toks) > 0 {
				l.templates = append(l.templates, PrefixTemplate{
					ID:      len(l.templates),
					Tokens:  toks,
					Columns: cols,
					Support: n.count,
				})
			}
			return
		}
		keys := make([]string, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			path = append(path, step{tok: k, col: col})
			walk(n.children[k], col+1)
			path = path[:len(path)-1]
		}
	}
	walk(l.root, 0)
}

// Templates returns the extracted prefix templates.
func (l *PrefixLibrary) Templates() []PrefixTemplate { return l.templates }

// Len returns the number of templates.
func (l *PrefixLibrary) Len() int { return len(l.templates) }

// Query compiles prefix template id into a column-constrained intersection.
func (l *PrefixLibrary) Query(id int) (query.Query, error) {
	if id < 0 || id >= len(l.templates) {
		return query.Query{}, fmt.Errorf("ftree: prefix template %d out of range (0..%d)", id, len(l.templates)-1)
	}
	t := l.templates[id]
	var set query.Intersection
	for i, tok := range t.Tokens {
		set.Terms = append(set.Terms, query.NewTerm(tok).At(t.Columns[i]))
	}
	return query.New(set), nil
}

// Queries compiles every prefix template.
func (l *PrefixLibrary) Queries() []query.Query {
	out := make([]query.Query, 0, len(l.templates))
	for i := range l.templates {
		if q, err := l.Query(i); err == nil {
			out = append(out, q)
		}
	}
	return out
}

// Classify walks the pruned prefix tree with a line's leading tokens and
// returns the matching template ID, or -1.
func (l *PrefixLibrary) Classify(line string) int {
	toks := query.SplitTokens(line)
	if len(toks) > l.params.MaxDepth {
		toks = toks[:l.params.MaxDepth]
	}
	var match []string
	var cols []int
	cur := l.root
	for col, t := range toks {
		next, ok := cur.children[t]
		if !ok {
			next, ok = cur.children[wildcard]
			if !ok {
				break
			}
			cur = next
			continue
		}
		match = append(match, t)
		cols = append(cols, col)
		cur = next
	}
	if cur == l.root || len(cur.children) != 0 {
		return -1
	}
	for _, tpl := range l.templates {
		if equalTemplate(tpl, match, cols) {
			return tpl.ID
		}
	}
	return -1
}

func equalTemplate(t PrefixTemplate, toks []string, cols []int) bool {
	if len(t.Tokens) != len(toks) {
		return false
	}
	for i := range toks {
		if t.Tokens[i] != toks[i] || t.Columns[i] != cols[i] {
			return false
		}
	}
	return true
}
