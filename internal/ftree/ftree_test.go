package ftree

import (
	"fmt"
	"strings"
	"testing"
)

// paperTree reproduces the Figure 7 example: global frequency order
// A,B,C,D,E descending; template1 = A→B, template3 = A→C→D→E.
func paperLines() [][]byte {
	var lines [][]byte
	add := func(n int, s string) {
		for i := 0; i < n; i++ {
			lines = append(lines, []byte(s))
		}
	}
	// Frequencies: A=100, B=60, C=40, D=25, E=25.
	add(60, "A B")     // template 1: A ∩ B
	add(15, "A C")     // template 2: A ∩ C (leaf C)
	add(25, "A C D E") // template 3: A ∩ C ∩ D ∩ E (needs ¬B)
	return lines
}

func TestExtractPaperExample(t *testing.T) {
	lib := Extract(paperLines(), Params{MaxChildren: 8, MinSupport: 2, MaxDepth: 8})
	if lib.Len() != 3 {
		for _, tpl := range lib.Templates() {
			t.Logf("template %d: %v (neg %v, support %d)", tpl.ID, tpl.Tokens, tpl.Negations, tpl.Support)
		}
		t.Fatalf("want 3 templates, got %d", lib.Len())
	}
	// Find the A→B template.
	var ab, acde *Template
	for i := range lib.Templates() {
		tpl := &lib.Templates()[i]
		switch strings.Join(tpl.Tokens, " ") {
		case "A B":
			ab = tpl
		case "A C D E", "A C E D":
			acde = tpl
		}
	}
	if ab == nil {
		t.Fatal("A→B template missing")
	}
	if acde == nil {
		t.Fatal("A→C→D→E template missing")
	}
	// The paper's key claim: A∩B needs no ¬C (C is lower frequency than B),
	// while the deep path needs ¬B at the C branch.
	if len(ab.Negations) != 0 {
		t.Errorf("A∩B should have no negations, got %v", ab.Negations)
	}
	found := false
	for _, n := range acde.Negations {
		if n == "B" {
			found = true
		}
	}
	if !found {
		t.Errorf("deep template should negate B, got %v", acde.Negations)
	}
	if ab.Support != 60 || acde.Support != 25 {
		t.Errorf("supports: %d, %d", ab.Support, acde.Support)
	}
}

func TestTemplateQueriesMatchTheirOwnLines(t *testing.T) {
	lines := paperLines()
	lib := Extract(lines, Params{MinSupport: 2})
	qs := lib.Queries()
	if len(qs) != lib.Len() {
		t.Fatalf("queries %d != templates %d", len(qs), lib.Len())
	}
	// Every training line must match exactly the query of its template.
	for _, line := range lines {
		id := lib.Classify(string(line))
		if id < 0 {
			t.Fatalf("line %q unclassified", line)
		}
		matches := 0
		for qi, q := range qs {
			if q.Match(string(line)) {
				matches++
				if qi != id {
					t.Errorf("line %q classified %d but matches query %d (%s)", line, id, qi, q)
				}
			}
		}
		if matches != 1 {
			t.Errorf("line %q matches %d template queries", line, matches)
		}
	}
}

func TestPruneVariableField(t *testing.T) {
	// 20 distinct low-frequency parameter tokens under a common prefix
	// must be pruned as a variable field.
	var lines [][]byte
	for i := 0; i < 20; i++ {
		lines = append(lines, []byte(fmt.Sprintf("common prefix param%02d", i)))
	}
	lib := Extract(lines, Params{MaxChildren: 8, MinSupport: 2})
	if lib.Len() != 1 {
		t.Fatalf("want 1 template, got %d: %+v", lib.Len(), lib.Templates())
	}
	toks := lib.Templates()[0].Tokens
	for _, tok := range toks {
		if strings.HasPrefix(tok, "param") {
			t.Errorf("variable token %q survived pruning", tok)
		}
	}
}

func TestMinSupportPruning(t *testing.T) {
	var lines [][]byte
	for i := 0; i < 50; i++ {
		lines = append(lines, []byte("frequent event type one"))
	}
	lines = append(lines, []byte("rare event lonely line"))
	lib := Extract(lines, Params{MinSupport: 5})
	for _, tpl := range lib.Templates() {
		for _, tok := range tpl.Tokens {
			if tok == "lonely" {
				t.Fatal("under-supported template survived")
			}
		}
	}
}

func TestClassifyUnknownLine(t *testing.T) {
	lib := Extract(paperLines(), Params{MinSupport: 2})
	if id := lib.Classify("Z Q totally unknown"); id != -1 {
		t.Fatalf("unknown line classified as %d", id)
	}
}

func TestQueryErrors(t *testing.T) {
	lib := Extract(paperLines(), Params{MinSupport: 2})
	if _, err := lib.Query(-1); err == nil {
		t.Error("negative id should fail")
	}
	if _, err := lib.Query(lib.Len()); err == nil {
		t.Error("out-of-range id should fail")
	}
}

func TestFrequency(t *testing.T) {
	lib := Extract(paperLines(), Params{MinSupport: 2})
	if lib.Frequency("A") != 100 {
		t.Errorf("freq(A) = %d", lib.Frequency("A"))
	}
	if lib.Frequency("B") != 60 {
		t.Errorf("freq(B) = %d", lib.Frequency("B"))
	}
	if lib.Frequency("nonexistent") != 0 {
		t.Error("unknown token should have zero frequency")
	}
}

func TestExtractDeterministic(t *testing.T) {
	a := Extract(paperLines(), Params{})
	b := Extract(paperLines(), Params{})
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic template count")
	}
	for i := range a.Templates() {
		if strings.Join(a.Templates()[i].Tokens, " ") != strings.Join(b.Templates()[i].Tokens, " ") {
			t.Fatal("nondeterministic template order")
		}
	}
}

func realisticLines() [][]byte {
	var lines [][]byte
	for i := 0; i < 300; i++ {
		switch i % 3 {
		case 0:
			lines = append(lines, []byte(fmt.Sprintf("R%02d-M0 RAS KERNEL INFO instruction cache parity error corrected", i%32)))
		case 1:
			lines = append(lines, []byte(fmt.Sprintf("R%02d-M1 RAS KERNEL FATAL data TLB error interrupt", i%32)))
		default:
			lines = append(lines, []byte(fmt.Sprintf("R%02d-M0 RAS APP FATAL ciod: failed to read message prefix on control stream %d", i%32, i)))
		}
	}
	return lines
}

func TestExtractRealisticTemplates(t *testing.T) {
	lib := Extract(realisticLines(), Params{MaxChildren: 6, MinSupport: 5, MaxDepth: 8})
	if lib.Len() < 2 || lib.Len() > 10 {
		for _, tpl := range lib.Templates() {
			t.Logf("%d: %v", tpl.ID, tpl.Tokens)
		}
		t.Fatalf("template count %d outside plausible band", lib.Len())
	}
	// Classification should cover most lines.
	classified := 0
	for _, l := range realisticLines() {
		if lib.Classify(string(l)) >= 0 {
			classified++
		}
	}
	if classified < 200 {
		t.Fatalf("only %d/300 lines classified", classified)
	}
}

func TestPrefixExtract(t *testing.T) {
	var lines [][]byte
	for i := 0; i < 100; i++ {
		lines = append(lines, []byte(fmt.Sprintf("node%02d RAS KERNEL INFO msg", i%25)))
		lines = append(lines, []byte(fmt.Sprintf("node%02d RAS APP FATAL err", i%25)))
	}
	lib := ExtractPrefix(lines, PrefixParams{MaxChildren: 6, MinSupport: 5, MaxDepth: 5})
	if lib.Len() != 2 {
		for _, tpl := range lib.Templates() {
			t.Logf("%d: %v @ %v", tpl.ID, tpl.Tokens, tpl.Columns)
		}
		t.Fatalf("want 2 prefix templates, got %d", lib.Len())
	}
	// Column 0 (node name) is variable and must be wildcarded out.
	for _, tpl := range lib.Templates() {
		for i, col := range tpl.Columns {
			if col == 0 {
				t.Errorf("variable column 0 kept: %v", tpl.Tokens[i])
			}
		}
	}
	// Compiled queries carry column constraints and match their lines.
	qs := lib.Queries()
	for _, q := range qs {
		if !q.UsesColumns() {
			t.Error("prefix query should use columns")
		}
	}
	line := "node07 RAS KERNEL INFO msg"
	id := lib.Classify(line)
	if id < 0 {
		t.Fatal("line unclassified")
	}
	q, _ := lib.Query(id)
	if !q.Match(line) {
		t.Errorf("query %s should match %q", q, line)
	}
}

func TestPrefixClassifyDistinguishesColumns(t *testing.T) {
	lines := [][]byte{
		[]byte("A B C"), []byte("A B C"), []byte("A B C"),
		[]byte("B A C"), []byte("B A C"), []byte("B A C"),
	}
	lib := ExtractPrefix(lines, PrefixParams{MinSupport: 2})
	if lib.Len() != 2 {
		t.Fatalf("want 2 templates, got %d", lib.Len())
	}
	a := lib.Classify("A B C")
	b := lib.Classify("B A C")
	if a == b || a < 0 || b < 0 {
		t.Fatalf("column order not distinguished: %d vs %d", a, b)
	}
}

func TestPrefixQueryErrors(t *testing.T) {
	lib := ExtractPrefix([][]byte{[]byte("x y"), []byte("x y")}, PrefixParams{})
	if _, err := lib.Query(99); err == nil {
		t.Error("out-of-range prefix id should fail")
	}
}

func BenchmarkExtract(b *testing.B) {
	lines := realisticLines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(lines, Params{})
	}
}
