// Package ftree implements frequency-tree (FT-tree) log template
// extraction [84, 85] and the paper's §4.3 compilation of templates into
// MithriLog's union-of-intersections query form. A prefix-tree variant —
// the extension the paper sketches for column-constrained matching — is
// provided in prefixtree.go.
//
// FT-tree builds a parse tree in which tokens that occur more frequently
// across the whole dataset sit closer to the root: each line contributes
// its distinct tokens sorted by descending global frequency. Sub-trees
// fanning out too widely (variable message parameters) and paths with too
// little support are pruned; every remaining root-to-leaf path is a
// template.
//
// A template compiles to a boolean query as the paper describes: all path
// tokens are positive terms, and at each branch point the siblings with
// *higher* global frequency than the taken child are negated — had the
// line contained such a token, frequency ordering would have routed it
// down that sibling instead. Lower-frequency siblings need no negation.
package ftree

import (
	"fmt"
	"sort"

	"mithrilog/internal/query"
)

// Params controls FT-tree construction and pruning.
type Params struct {
	// MaxChildren prunes a node's entire child set when it exceeds this
	// fan-out, treating the position as a variable parameter field
	// (default 8).
	MaxChildren int
	// MinSupport drops templates observed in fewer lines (default 2).
	MinSupport int
	// MaxDepth caps template length in tokens (default 8).
	MaxDepth int
}

func (p Params) withDefaults() Params {
	if p.MaxChildren <= 0 {
		p.MaxChildren = 8
	}
	if p.MinSupport <= 0 {
		p.MinSupport = 2
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 8
	}
	return p
}

// Template is one extracted log template: the key tokens identifying a
// line class, ordered by descending global frequency.
type Template struct {
	// ID is the template's index within its library.
	ID int
	// Tokens is the root-to-leaf token path.
	Tokens []string
	// Negations are the higher-frequency siblings negated at each branch
	// point, flattened; together with Tokens they form the template query.
	Negations []string
	// Support is the number of training lines that followed this path.
	Support int
}

// node is one FT-tree vertex.
type node struct {
	token    string
	count    int
	children map[string]*node
}

func newNode(token string) *node {
	return &node{token: token, children: make(map[string]*node)}
}

// Library is an extracted template library plus the global frequency table
// needed to classify new lines.
type Library struct {
	params    Params
	freq      map[string]int
	templates []Template
	root      *node
	byPath    map[string]int // joined token path -> template ID
}

// Extract builds an FT-tree over the lines and returns the pruned template
// library. Lines are tokenized with the reference tokenizer.
func Extract(lines [][]byte, p Params) *Library {
	p = p.withDefaults()
	lib := &Library{params: p, freq: make(map[string]int), root: newNode(""), byPath: make(map[string]int)}

	// Pass 1: global token frequencies.
	tokenized := make([][]string, len(lines))
	for i, line := range lines {
		toks := query.SplitTokens(string(line))
		tokenized[i] = toks
		for _, t := range distinct(toks) {
			lib.freq[t]++
		}
	}

	// Pass 2: insert each line's frequency-sorted distinct tokens.
	for _, toks := range tokenized {
		path := lib.sortByFrequency(distinct(toks))
		if len(path) > p.MaxDepth {
			path = path[:p.MaxDepth]
		}
		cur := lib.root
		cur.count++
		for _, t := range path {
			next, ok := cur.children[t]
			if !ok {
				next = newNode(t)
				cur.children[t] = next
			}
			next.count++
			cur = next
		}
	}

	lib.prune(lib.root)
	lib.enumerate()
	return lib
}

// distinct returns the unique tokens preserving first-seen order.
func distinct(toks []string) []string {
	seen := make(map[string]bool, len(toks))
	var out []string
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// sortByFrequency orders tokens by descending global frequency, breaking
// ties lexicographically for determinism.
func (l *Library) sortByFrequency(toks []string) []string {
	out := append([]string(nil), toks...)
	sort.Slice(out, func(i, j int) bool { return l.freqLess(out[i], out[j]) })
	return out
}

// freqLess reports whether a sorts before b (higher frequency first).
func (l *Library) freqLess(a, b string) bool {
	fa, fb := l.freq[a], l.freq[b]
	if fa != fb {
		return fa > fb
	}
	return a < b
}

// prune removes over-fanned child sets and under-supported branches.
func (l *Library) prune(n *node) {
	if len(n.children) > l.params.MaxChildren {
		// Variable parameter field: cut the whole sub-tree here.
		n.children = make(map[string]*node)
		return
	}
	for tok, child := range n.children {
		if child.count < l.params.MinSupport {
			delete(n.children, tok)
			continue
		}
		l.prune(child)
	}
}

// enumerate walks the pruned tree collecting templates with their sibling
// negations. A template ends wherever lines terminate: at every leaf, and
// at internal nodes where sufficiently many lines end (their count exceeds
// the sum of their surviving children's counts) — Figure 7's template 2
// ends at an internal node this way.
func (l *Library) enumerate() {
	l.templates = l.templates[:0]
	var path []string
	var negs []string
	var walk func(n *node)
	emit := func(n *node, support int, extraNegs []string) {
		if len(path) == 0 {
			return
		}
		id := len(l.templates)
		allNegs := append(append([]string(nil), negs...), extraNegs...)
		l.templates = append(l.templates, Template{
			ID:        id,
			Tokens:    append([]string(nil), path...),
			Negations: allNegs,
			Support:   support,
		})
		l.byPath[joinPath(path)] = id
	}
	walk = func(n *node) {
		if len(n.children) == 0 {
			emit(n, n.count, nil)
			return
		}
		childSum := 0
		for _, c := range n.children {
			childSum += c.count
		}
		if ends := n.count - childSum; ends >= l.params.MinSupport {
			// A line ends here only if it lacks every continuation token,
			// so the template negates the node's surviving children.
			children := make([]string, 0, len(n.children))
			for k := range n.children {
				children = append(children, k)
			}
			sort.Slice(children, func(i, j int) bool { return l.freqLess(children[i], children[j]) })
			emit(n, ends, children)
		}
		// Deterministic order: visit children by frequency order.
		keys := make([]string, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return l.freqLess(keys[i], keys[j]) })
		for _, k := range keys {
			child := n.children[k]
			// Negate siblings with higher frequency than this child.
			negStart := len(negs)
			for _, s := range keys {
				if s != k && l.freqLess(s, k) {
					negs = append(negs, s)
				}
			}
			path = append(path, k)
			walk(child)
			path = path[:len(path)-1]
			negs = negs[:negStart]
		}
	}
	walk(l.root)
}

// Templates returns the extracted templates.
func (l *Library) Templates() []Template { return l.templates }

// Len returns the number of templates.
func (l *Library) Len() int { return len(l.templates) }

// Frequency returns a token's global occurrence count in the training set.
func (l *Library) Frequency(token string) int { return l.freq[token] }

// Query compiles template id into the §4.3 boolean form: positive terms
// for the path tokens and negative terms for each higher-frequency sibling
// at the branch points.
func (l *Library) Query(id int) (query.Query, error) {
	if id < 0 || id >= len(l.templates) {
		return query.Query{}, fmt.Errorf("ftree: template %d out of range (0..%d)", id, len(l.templates)-1)
	}
	t := l.templates[id]
	var set query.Intersection
	for _, tok := range t.Tokens {
		set.Terms = append(set.Terms, query.NewTerm(tok))
	}
	positive := make(map[string]bool, len(t.Tokens))
	for _, tok := range t.Tokens {
		positive[tok] = true
	}
	negated := make(map[string]bool, len(t.Negations))
	for _, n := range t.Negations {
		if positive[n] || negated[n] {
			continue
		}
		negated[n] = true
		set.Terms = append(set.Terms, query.NewTerm(n).Not())
	}
	return query.New(set), nil
}

// Queries compiles every template; templates whose query cannot be built
// are skipped (none should fail in practice).
func (l *Library) Queries() []query.Query {
	out := make([]query.Query, 0, len(l.templates))
	for i := range l.templates {
		q, err := l.Query(i)
		if err == nil {
			out = append(out, q)
		}
	}
	return out
}

// Classify returns the template ID a line belongs to by walking the pruned
// tree with the line's frequency-sorted distinct tokens, or -1 if the line
// falls off the tree before reaching a leaf.
func (l *Library) Classify(line string) int {
	toks := l.sortByFrequency(distinct(query.SplitTokens(line)))
	cur := l.root
	var path []string
	for _, t := range toks {
		next, ok := cur.children[t]
		if !ok {
			continue
		}
		path = append(path, t)
		cur = next
		if len(cur.children) == 0 {
			break
		}
	}
	if cur == l.root {
		return -1
	}
	if id, ok := l.byPath[joinPath(path)]; ok {
		return id
	}
	return -1
}

// joinPath keys a token path with an unambiguous separator (tokens never
// contain newlines after tokenization).
func joinPath(path []string) string {
	out := ""
	for i, p := range path {
		if i > 0 {
			out += "\n"
		}
		out += p
	}
	return out
}
