package lz4

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t testing.TB, src []byte) []byte {
	t.Helper()
	c := NewCompressor()
	comp := c.Compress(nil, src)
	got, err := Decompress(nil, comp)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch (%d vs %d bytes)", len(got), len(src))
	}
	return comp
}

func logSample(lines int) []byte {
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "2005.11.09 dn%03d RAS KERNEL INFO %d microseconds spent in the rbs signal handler during %d calls\n", i%256, i%977, i%53)
	}
	return []byte(sb.String())
}

func TestRoundTripCases(t *testing.T) {
	for _, s := range []string{
		"",
		"a",
		"short",
		"twelve bytes",
		"thirteen bytes!",
		strings.Repeat("a", 300),
		strings.Repeat("abcd", 100),
		"head " + strings.Repeat("x", 20) + " tail",
		strings.Repeat("long literal run with no repeats 0123456789 ", 1) + "ZZZZ",
	} {
		roundTrip(t, []byte(s))
	}
}

func TestRoundTripLongLiteralRun(t *testing.T) {
	// > 15+255 literals exercises multi-byte length extensions.
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 1000)
	rng.Read(src)
	roundTrip(t, src)
}

func TestRoundTripLongMatch(t *testing.T) {
	// > 15+255+4 match length exercises match length extensions.
	src := append([]byte("prefix--"), bytes.Repeat([]byte{'q'}, 2000)...)
	roundTrip(t, src)
}

func TestRatioOnLogs(t *testing.T) {
	src := logSample(5000)
	comp := roundTrip(t, src)
	r := Ratio(len(src), len(comp))
	if r < 4 {
		t.Fatalf("LZ4 ratio on repetitive logs = %.2f, expected > 4", r)
	}
	t.Logf("LZ4 log ratio %.2fx", r)
}

func TestLZ4BeatsLZAHStyleOnRatio(t *testing.T) {
	// LZ4's byte-granular matching should out-compress word-aligned
	// schemes on text (the Table 5 relationship); just check it is strong.
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog\n", 200))
	comp := roundTrip(t, src)
	if Ratio(len(src), len(comp)) < 10 {
		t.Fatalf("ratio %.2f unexpectedly low", Ratio(len(src), len(comp)))
	}
}

func TestDecompressCorrupt(t *testing.T) {
	src := logSample(50)
	comp := NewCompressor().Compress(nil, src)
	for name, blk := range map[string][]byte{
		"empty":     {},
		"header":    comp[:2],
		"truncated": comp[:len(comp)-3],
	} {
		if _, err := Decompress(nil, blk); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Zero offset.
	bad := []byte{8, 0, 0, 0, 0x41, 'x', 'x', 'x', 'x', 0, 0}
	if _, err := Decompress(nil, bad); err == nil {
		t.Error("zero offset should fail")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(16384)
		src := make([]byte, n)
		for i := range src {
			src[i] = byte('a' + rng.Intn(1+rng.Intn(20)))
		}
		c := NewCompressor()
		comp := c.Compress(nil, src)
		got, err := Decompress(nil, comp)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripBinary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := make([]byte, rng.Intn(4096))
		rng.Read(src)
		c := NewCompressor()
		got, err := Decompress(nil, c.Compress(nil, src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	c := NewCompressor()
	src := logSample(10000)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = c.Compress(dst[:0], src)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := logSample(10000)
	comp := NewCompressor().Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	var dst []byte
	var err error
	for i := 0; i < b.N; i++ {
		dst, err = Decompress(dst[:0], comp)
		if err != nil {
			b.Fatal(err)
		}
	}
}
