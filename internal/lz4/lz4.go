// Package lz4 implements the LZ4 block format (compressor and
// decompressor), used as the general-purpose high-speed compression
// baseline of Tables 4 and 5. The implementation follows the published
// block specification: each sequence is a token byte (high nibble =
// literal length, low nibble = match length - 4), optional length
// extension bytes of 255, the literals, a 2-byte little-endian match
// offset, and optional match length extension bytes. The block ends with a
// literals-only sequence; the spec's end-of-block restrictions (last five
// bytes are literals, no match starting within the last twelve bytes) are
// honored by the compressor.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch    = 4
	hashLog     = 16
	hashEntries = 1 << hashLog
	maxOffset   = 65535
	// lastLiterals: the last 5 bytes must be encoded as literals, and no
	// match may start within the last 12 bytes (mflimit).
	lastLiterals = 5
	mflimit      = 12
)

// ErrCorrupt reports a malformed compressed block.
var ErrCorrupt = errors.New("lz4: corrupt compressed block")

// Compressor holds the reusable match-finder state.
type Compressor struct {
	table [hashEntries]int32
	gen   [hashEntries]uint32
	cur   uint32
}

// NewCompressor returns a ready compressor.
func NewCompressor() *Compressor { return &Compressor{} }

func (c *Compressor) newBlock() {
	c.cur++
	if c.cur == 0 {
		for i := range c.gen {
			c.gen[i] = 0
		}
		c.cur = 1
	}
}

func hash4(v uint32) int {
	return int((v * 2654435761) >> (32 - hashLog))
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// CompressedSizeHeader prefixes blocks with the uncompressed length so the
// decoder can size its output exactly (the LZ4 block format itself does
// not carry lengths; frames do).
const headerBytes = 4

// Compress appends an LZ4 block (with a 4-byte uncompressed-length
// header) built from src to dst.
func (c *Compressor) Compress(dst, src []byte) []byte {
	c.newBlock()
	base := len(dst)
	dst = append(dst, make([]byte, headerBytes)...)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(src)))

	if len(src) == 0 {
		return dst
	}
	anchor := 0
	pos := 0
	limit := len(src) - mflimit
	for pos < limit {
		v := load32(src, pos)
		h := hash4(v)
		cand := int(c.table[h])
		fresh := c.gen[h] == c.cur
		c.table[h] = int32(pos)
		c.gen[h] = c.cur
		if !fresh || cand >= pos || pos-cand > maxOffset || load32(src, cand) != v {
			pos++
			continue
		}
		// Extend the match forward (not past the end-of-block limit).
		matchLen := minMatch
		maxLen := len(src) - lastLiterals - pos
		for matchLen < maxLen && src[cand+matchLen] == src[pos+matchLen] {
			matchLen++
		}
		dst = emitSequence(dst, src[anchor:pos], pos-cand, matchLen)
		pos += matchLen
		anchor = pos
	}
	// Final literals-only sequence.
	dst = emitLastLiterals(dst, src[anchor:])
	return dst
}

func emitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	ml := matchLen - minMatch
	token := byte(0)
	if litLen >= 15 {
		token = 0xf0
	} else {
		token = byte(litLen) << 4
	}
	if ml >= 15 {
		token |= 0x0f
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = appendLenExt(dst, ml-15)
	}
	return dst
}

func emitLastLiterals(dst, literals []byte) []byte {
	litLen := len(literals)
	token := byte(0)
	if litLen >= 15 {
		token = 0xf0
	} else {
		token = byte(litLen) << 4
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	return append(dst, literals...)
}

func appendLenExt(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// Decompress appends the decompressed contents of a block produced by
// Compress to dst.
func Decompress(dst, block []byte) ([]byte, error) {
	if len(block) < headerBytes {
		return dst, ErrCorrupt
	}
	uncomp := int(binary.LittleEndian.Uint32(block))
	in := block[headerBytes:]
	start := len(dst)
	pos := 0
	for {
		if len(dst)-start == uncomp && pos == len(in) {
			return dst, nil
		}
		if pos >= len(in) {
			return dst, fmt.Errorf("%w: truncated at sequence start", ErrCorrupt)
		}
		token := in[pos]
		pos++
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, pos, err = readLenExt(in, pos, litLen)
			if err != nil {
				return dst, err
			}
		}
		if pos+litLen > len(in) {
			return dst, fmt.Errorf("%w: truncated literals", ErrCorrupt)
		}
		dst = append(dst, in[pos:pos+litLen]...)
		pos += litLen
		if pos == len(in) {
			// Last sequence has no match part.
			if len(dst)-start != uncomp {
				return dst, fmt.Errorf("%w: produced %d of %d bytes", ErrCorrupt, len(dst)-start, uncomp)
			}
			return dst, nil
		}
		if pos+2 > len(in) {
			return dst, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(in[pos]) | int(in[pos+1])<<8
		pos += 2
		if offset == 0 {
			return dst, fmt.Errorf("%w: zero offset", ErrCorrupt)
		}
		matchLen := int(token & 0x0f)
		if matchLen == 15 {
			var err error
			matchLen, pos, err = readLenExt(in, pos, matchLen)
			if err != nil {
				return dst, err
			}
		}
		matchLen += minMatch
		srcPos := len(dst) - offset
		if srcPos < start {
			return dst, fmt.Errorf("%w: offset %d before block start", ErrCorrupt, offset)
		}
		if len(dst)-start+matchLen > uncomp {
			return dst, fmt.Errorf("%w: match overruns output", ErrCorrupt)
		}
		for i := 0; i < matchLen; i++ {
			dst = append(dst, dst[srcPos+i])
		}
	}
}

func readLenExt(in []byte, pos, n int) (int, int, error) {
	for {
		if pos >= len(in) {
			return 0, 0, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
		}
		b := in[pos]
		pos++
		n += int(b)
		if b != 255 {
			return n, pos, nil
		}
	}
}

// Ratio is original size divided by compressed size.
func Ratio(originalLen, compressedLen int) float64 {
	if compressedLen == 0 {
		return 0
	}
	return float64(originalLen) / float64(compressedLen)
}
