package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"mithrilog"
)

func newShardedServer(t *testing.T, cfg mithrilog.Config) (*httptest.Server, *mithrilog.Engine) {
	t.Helper()
	if cfg.Shards < 2 {
		cfg.Shards = 4
	}
	eng := mithrilog.Open(cfg)
	ts := httptest.NewServer(New(eng))
	t.Cleanup(func() {
		ts.Close()
		_ = eng.Close()
	})
	return ts, eng
}

// TestShardedIngestSearchCycle runs the basic cycle against a 4-shard
// fleet: tenant-tagged ingest, tenant-routed and scatter queries, and
// the shard fields in the response.
func TestShardedIngestSearchCycle(t *testing.T) {
	ts, _ := newShardedServer(t, mithrilog.Config{})
	post(t, ts.URL+"/ingest?tenant=acme", "acme alpha event\nacme beta event\n")
	post(t, ts.URL+"/ingest", "free alpha event\n")

	// Scatter: both tenants' lines, all shards queried.
	var sr searchResponse
	if code := get(t, ts.URL+"/search?q="+url.QueryEscape("alpha AND event"), &sr); code != http.StatusOK {
		t.Fatalf("search status %d", code)
	}
	if sr.Matches != 2 || sr.ShardsQueried != 4 || sr.Partial {
		t.Fatalf("scatter: %+v", sr)
	}

	// Tenant-routed: only acme's line, one shard.
	var tr searchResponse
	if code := get(t, ts.URL+"/search?q="+url.QueryEscape("alpha AND event")+"&tenant=acme", &tr); code != http.StatusOK {
		t.Fatalf("tenant search status %d", code)
	}
	if tr.Matches != 1 || tr.ShardsQueried != 1 {
		t.Fatalf("tenant search: %+v", tr)
	}
	if len(tr.Lines) != 1 || !strings.HasPrefix(tr.Lines[0], "acme alpha") {
		t.Fatalf("tenant search lines: %v", tr.Lines)
	}
}

// TestShardedGrepAndTrace covers the remaining search-shaped endpoints
// on a fleet.
func TestShardedGrepAndTrace(t *testing.T) {
	ts, _ := newShardedServer(t, mithrilog.Config{})
	post(t, ts.URL+"/ingest?tenant=acme", "job 123 done\njob abc done\n")

	var gr searchResponse
	if code := get(t, ts.URL+"/grep?e="+url.QueryEscape(`job \d+`)+"&tenant=acme", &gr); code != http.StatusOK {
		t.Fatalf("grep status %d", code)
	}
	if gr.Matches != 1 || gr.ShardsQueried != 1 {
		t.Fatalf("tenant grep: %+v", gr)
	}

	var tr traceResponse
	if code := get(t, ts.URL+"/trace?q=job", &tr); code != http.StatusOK {
		t.Fatalf("trace status %d", code)
	}
	if tr.Result.ShardsQueried != 4 {
		t.Fatalf("trace scatter width: %+v", tr.Result)
	}
	attrs := tr.Trace.Attrs
	if attrs["shards_queried"] != "4" {
		t.Fatalf("trace span missing fleet attrs: %v", attrs)
	}
}

// TestShardedTenantQuota429 exhausts one tenant's quota out-of-band and
// checks the HTTP mapping: quota rejection is 429, like a full queue.
func TestShardedTenantQuota429(t *testing.T) {
	ts, eng := newShardedServer(t, mithrilog.Config{TenantInFlight: 1})
	post(t, ts.URL+"/ingest?tenant=acme", "acme payload line\n")

	release, err := eng.TenantLimiter().Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	var er errorResponse
	if code := get(t, ts.URL+"/search?q=payload&tenant=acme", &er); code != http.StatusTooManyRequests {
		t.Fatalf("quota-exhausted search status %d (%+v)", code, er)
	}
	// Another tenant is unaffected.
	var sr searchResponse
	if code := get(t, ts.URL+"/search?q=payload&tenant=other", &sr); code == http.StatusTooManyRequests {
		t.Fatal("other tenant hit acme's quota")
	}
}

// TestShardedStatsAndMetrics checks the fleet fields in /stats and the
// shard-labeled federation in /metrics.
func TestShardedStatsAndMetrics(t *testing.T) {
	ts, _ := newShardedServer(t, mithrilog.Config{})
	var lines []string
	for i := 0; i < 64; i++ {
		lines = append(lines, fmt.Sprintf("metric probe line %d", i))
	}
	post(t, ts.URL+"/ingest", strings.Join(lines, "\n"))
	post(t, ts.URL+"/flush", "")

	var st statsResponse
	if code := get(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Shards != 4 || st.Lines != 64 {
		t.Fatalf("stats: %+v", st)
	}
	if st.SealedSegments+st.ActiveSegments == 0 {
		t.Fatalf("stats reports no segments: %+v", st)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	for _, want := range []string{
		`mithrilog_router_queries_total`,
		`mithrilog_storage_pages{shard="0"}`,
		`mithrilog_storage_pages{shard="3"}`,
		`mithrilog_http_requests_total`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
	// The federation must emit each family header once, not per shard.
	if n := strings.Count(body, "# TYPE mithrilog_storage_pages "); n != 1 {
		t.Errorf("TYPE header for mithrilog_storage_pages appears %d times", n)
	}
}
