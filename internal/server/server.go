// Package server exposes a MithriLog engine over HTTP with a small JSON
// API, turning the library into the long-running log analytics service
// the paper's deployment story implies (logs stream in continuously;
// queries arrive from operators and detection pipelines).
//
// Endpoints:
//
//	POST /ingest    newline-separated log text in the body [?tenant=name]
//	POST /flush     force buffered lines into storage pages
//	POST /snapshot  record a time boundary (RFC 3339 "time" form value)
//	GET  /search    q=<expr> [limit=N] [noindex=1] [from=RFC3339] [to=RFC3339] [tenant=name]
//	GET  /grep      e=<regex> [limit=N] [tenant=name]
//	GET  /trace     q=<expr> [same params as /search] — search + span tree
//	GET  /stats     engine statistics
//	GET  /metrics   Prometheus text exposition (see OBSERVABILITY.md)
//	GET  /healthz   liveness probe
//
// Every endpoint is instrumented: per-endpoint request counters (by
// status code), latency histograms, and an in-flight gauge are registered
// into the engine's metrics registry, so /metrics reports the HTTP layer
// alongside the engine, storage, accelerator, scheduler, and page-cache
// series.
//
// Search-shaped endpoints (/search, /trace, /grep) run through the
// engine's admission-controlled scheduler: a full admission queue or an
// exhausted per-tenant quota maps to 429 Too Many Requests, an expired
// per-query deadline to 504 Gateway Timeout, and a client hang-up cancels
// the scan between pages.
//
// On a sharded engine (Config.Shards > 1) the tenant parameter routes:
// tenant-tagged ingest lands on the tenant's home shard, a tenant query
// touches only that shard, and untenanted queries scatter-gather across
// the fleet. A scatter in which some — not all — shards fail still
// returns 200, with partial=true and the failed shards listed, so
// callers can distinguish a complete answer from a degraded one. The
// /metrics exposition federates the router and every shard (series
// labeled shard="<i>").
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"mithrilog"
	"mithrilog/internal/obs"
)

// Server is the HTTP facade over one engine.
type Server struct {
	eng *mithrilog.Engine
	mux *http.ServeMux

	ingested atomic.Uint64
	queries  atomic.Uint64

	requests *obs.CounterVec   // endpoint, code
	latency  *obs.HistogramVec // endpoint
	inflight *obs.Gauge
}

// New wraps an engine. The engine is safe for the concurrent requests an
// HTTP server delivers.
func New(eng *mithrilog.Engine) *Server {
	reg := eng.Obs()
	s := &Server{
		eng: eng,
		mux: http.NewServeMux(),
		requests: reg.CounterVec("mithrilog_http_requests_total",
			"HTTP requests served, by endpoint and status code.",
			"endpoint", "code"),
		latency: reg.HistogramVec("mithrilog_http_request_seconds",
			"HTTP request latency by endpoint.",
			obs.DurationBuckets(), "endpoint"),
		inflight: reg.Gauge("mithrilog_http_in_flight_requests",
			"Requests currently being served."),
	}
	s.handle("/ingest", s.handleIngest)
	s.handle("/flush", s.handleFlush)
	s.handle("/snapshot", s.handleSnapshot)
	s.handle("/search", s.handleSearch)
	s.handle("/grep", s.handleGrep)
	s.handle("/trace", s.handleTrace)
	s.handle("/stats", s.handleStats)
	// MetricsHandler, not reg: on a sharded engine the exposition is the
	// federated view (router + every shard), of which reg is one member.
	s.handle("/metrics", eng.MetricsHandler().ServeHTTP)
	s.handle("/healthz", s.handleHealth)
	return s
}

// handle registers an instrumented handler: in-flight gauge, per-endpoint
// request counter (by status code), and latency histogram.
func (s *Server) handle(endpoint string, h http.HandlerFunc) {
	s.mux.HandleFunc(endpoint, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.inflight.Dec()
		s.requests.WithLabelValues(endpoint, strconv.Itoa(sw.code)).Inc()
		s.latency.WithLabelValues(endpoint).ObserveSince(start)
	})
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// ingestResponse reports an ingest call.
type ingestResponse struct {
	Lines         int    `json:"lines"`
	TotalIngested uint64 `json:"totalIngested"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// The tenant must come from the URL: FormValue would try to parse the
	// body, which here is raw log text, not a form.
	tenant := r.URL.Query().Get("tenant")
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var batch [][]byte
	n := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := s.eng.IngestTenant(tenant, batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for sc.Scan() {
		line := make([]byte, len(sc.Bytes()))
		copy(line, sc.Bytes())
		batch = append(batch, line)
		n++
		if len(batch) == 4096 {
			if err := flush(); err != nil {
				writeErr(w, http.StatusInternalServerError, "ingest: %v", err)
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if err := flush(); err != nil {
		writeErr(w, http.StatusInternalServerError, "ingest: %v", err)
		return
	}
	s.ingested.Add(uint64(n))
	writeJSON(w, http.StatusOK, ingestResponse{Lines: n, TotalIngested: s.ingested.Load()})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if err := s.eng.Flush(); err != nil {
		writeErr(w, http.StatusInternalServerError, "flush: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ts := time.Now()
	if v := r.FormValue("time"); v != "" {
		parsed, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad time: %v", err)
			return
		}
		ts = parsed
	}
	if err := s.eng.Snapshot(ts); err != nil {
		writeErr(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"time": ts.Format(time.RFC3339)})
}

// searchResponse reports a query. The shard fields appear only from a
// sharded engine: partial=true flags a scatter that lost some (not all)
// shards, with the failures enumerated.
type searchResponse struct {
	Matches        int                      `json:"matches"`
	Lines          []string                 `json:"lines,omitempty"`
	Offloaded      bool                     `json:"offloaded"`
	UsedIndex      bool                     `json:"usedIndex"`
	CandidatePages int                      `json:"candidatePages"`
	TotalPages     int                      `json:"totalPages"`
	CachedPages    int                      `json:"cachedPages"`
	SimElapsedNs   int64                    `json:"simElapsedNs"`
	QueueNs        int64                    `json:"queueNs"`
	WallElapsedNs  int64                    `json:"wallElapsedNs"`
	EffectiveGBps  float64                  `json:"effectiveGBps"`
	Partial        bool                     `json:"partial,omitempty"`
	FailedShards   []mithrilog.ShardFailure `json:"failedShards,omitempty"`
	ShardsQueried  int                      `json:"shardsQueried,omitempty"`
	EmptyShards    int                      `json:"emptyShards,omitempty"`
}

// searchStatus maps a search error to its HTTP status: admission
// rejections — a full queue or an exhausted tenant quota — are
// backpressure (429), deadline expiries are timeouts (504), everything
// else is a caller error.
func searchStatus(err error) int {
	switch {
	case errors.Is(err, mithrilog.ErrQueueFull), errors.Is(err, mithrilog.ErrTenantQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

// searchParams parses the query parameters shared by /search and /trace.
// A non-nil error has already been written to w.
func searchParams(w http.ResponseWriter, r *http.Request) (expr string, limit int, opts mithrilog.SearchOptions, ok bool) {
	expr = r.FormValue("q")
	if expr == "" {
		writeErr(w, http.StatusBadRequest, "missing q parameter")
		return "", 0, opts, false
	}
	limit = 100
	if v := r.FormValue("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", v)
			return "", 0, opts, false
		}
		limit = n
	}
	opts.CollectLines = limit > 0
	opts.NoIndex = r.FormValue("noindex") == "1"
	opts.Tenant = r.FormValue("tenant")
	// A hung-up client cancels the scan between pages.
	opts.Context = r.Context()
	for name, dst := range map[string]*time.Time{"from": &opts.From, "to": &opts.To} {
		if v := r.FormValue(name); v != "" {
			parsed, err := time.Parse(time.RFC3339, v)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad %s: %v", name, err)
				return "", 0, opts, false
			}
			*dst = parsed
		}
	}
	return expr, limit, opts, true
}

func toSearchResponse(res mithrilog.Result, limit int) searchResponse {
	lines := res.Lines
	if len(lines) > limit {
		lines = lines[:limit]
	}
	return searchResponse{
		Matches:        res.Matches,
		Lines:          lines,
		Offloaded:      res.Offloaded,
		UsedIndex:      res.UsedIndex,
		CandidatePages: res.CandidatePages,
		TotalPages:     res.TotalPages,
		CachedPages:    res.CachedPages,
		SimElapsedNs:   res.SimElapsed.Nanoseconds(),
		QueueNs:        res.Breakdown.Queue.Nanoseconds(),
		WallElapsedNs:  res.WallElapsed.Nanoseconds(),
		EffectiveGBps:  res.EffectiveGBps,
		Partial:        res.Partial,
		FailedShards:   res.FailedShards,
		ShardsQueried:  res.ShardsQueried,
		EmptyShards:    res.EmptyShards,
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	expr, limit, opts, ok := searchParams(w, r)
	if !ok {
		return
	}
	res, err := s.eng.Search(expr, opts)
	if err != nil {
		writeErr(w, searchStatus(err), "search: %v", err)
		return
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, toSearchResponse(res, limit))
}

// traceResponse reports a traced query: the usual search result plus the
// span tree of its execution stages.
type traceResponse struct {
	Result searchResponse `json:"result"`
	Trace  obs.SpanData   `json:"trace"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	expr, limit, opts, ok := searchParams(w, r)
	if !ok {
		return
	}
	res, trace, err := s.eng.TraceSearch(expr, opts)
	if err != nil {
		writeErr(w, searchStatus(err), "trace: %v", err)
		return
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, traceResponse{
		Result: toSearchResponse(res, limit),
		Trace:  trace,
	})
}

// grepResponse is a searchResponse plus the regex prefilter outcome:
// whether the literal-factor index prefilter applied, and how many data
// pages it proved non-matching without reading.
type grepResponse struct {
	searchResponse
	Prefilter    bool `json:"prefilter"`
	PagesSkipped int  `json:"pagesSkipped"`
}

func (s *Server) handleGrep(w http.ResponseWriter, r *http.Request) {
	pattern := r.FormValue("e")
	if pattern == "" {
		writeErr(w, http.StatusBadRequest, "missing e parameter")
		return
	}
	limit := 100
	if v := r.FormValue("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	opts := mithrilog.RegexOptions{
		CollectLines: limit > 0,
		NoPrefilter:  r.FormValue("noprefilter") != "",
	}
	res, err := s.eng.SearchRegexOpts(r.Context(), r.FormValue("tenant"), pattern, opts)
	if err != nil {
		writeErr(w, searchStatus(err), "grep: %v", err)
		return
	}
	s.queries.Add(1)
	lines := res.Lines
	if len(lines) > limit {
		lines = lines[:limit]
	}
	writeJSON(w, http.StatusOK, grepResponse{
		searchResponse: searchResponse{
			Matches:        res.Matches,
			Lines:          lines,
			UsedIndex:      res.Prefiltered,
			CandidatePages: res.CandidatePages,
			TotalPages:     res.TotalPages,
			CachedPages:    res.CachedPages,
			SimElapsedNs:   res.SimElapsed.Nanoseconds(),
			WallElapsedNs:  res.WallElapsed.Nanoseconds(),
			Partial:        res.Partial,
			FailedShards:   res.FailedShards,
			ShardsQueried:  res.ShardsQueried,
			EmptyShards:    res.EmptyShards,
		},
		Prefilter:    res.Prefiltered,
		PagesSkipped: res.TotalPages - res.CandidatePages,
	})
}

// statsResponse reports engine state (summed across shards when sharded).
type statsResponse struct {
	Lines            uint64  `json:"lines"`
	RawBytes         uint64  `json:"rawBytes"`
	CompressedBytes  uint64  `json:"compressedBytes"`
	CompressionRatio float64 `json:"compressionRatio"`
	DataPages        int     `json:"dataPages"`
	IndexMemoryBytes int     `json:"indexMemoryBytes"`
	QueriesServed    uint64  `json:"queriesServed"`
	Shards           int     `json:"shards"`
	SealedSegments   int     `json:"sealedSegments"`
	ActiveSegments   int     `json:"activeSegments"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Lines:            st.Lines,
		RawBytes:         st.RawBytes,
		CompressedBytes:  st.CompressedBytes,
		CompressionRatio: st.CompressionRatio,
		DataPages:        st.DataPages,
		IndexMemoryBytes: st.IndexMemoryBytes,
		QueriesServed:    s.queries.Load(),
		Shards:           st.Shards,
		SealedSegments:   st.SealedSegments,
		ActiveSegments:   st.ActiveSegments,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
