package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"mithrilog"
)

func newTestServer(t *testing.T) (*httptest.Server, *mithrilog.Engine) {
	t.Helper()
	eng := mithrilog.Open(mithrilog.Config{})
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts, eng
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func get(t *testing.T, rawURL string, into interface{}) int {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode
}

func TestIngestSearchCycle(t *testing.T) {
	ts, _ := newTestServer(t)
	body := "alpha event one\nbeta event two\nalpha event three\n"
	resp, _ := post(t, ts.URL+"/ingest", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var sr searchResponse
	if code := get(t, ts.URL+"/search?q="+url.QueryEscape("alpha AND event"), &sr); code != http.StatusOK {
		t.Fatalf("search status %d", code)
	}
	if sr.Matches != 2 || len(sr.Lines) != 2 {
		t.Fatalf("search: %+v", sr)
	}
	if !sr.Offloaded {
		t.Fatal("expected accelerator offload")
	}
	if sr.SimElapsedNs <= 0 {
		t.Fatal("timing missing")
	}
}

func TestSearchLimitAndNoIndex(t *testing.T) {
	ts, _ := newTestServer(t)
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, fmt.Sprintf("needle item %d", i))
	}
	post(t, ts.URL+"/ingest", strings.Join(lines, "\n"))
	var sr searchResponse
	get(t, ts.URL+"/search?q=needle&limit=5&noindex=1", &sr)
	if sr.Matches != 50 || len(sr.Lines) != 5 {
		t.Fatalf("limit: %+v", sr)
	}
	if sr.UsedIndex {
		t.Fatal("noindex ignored")
	}
	// limit=0 returns counts only (fresh struct: omitempty fields are not
	// cleared by json.Decode).
	var countOnly searchResponse
	get(t, ts.URL+"/search?q=needle&limit=0", &countOnly)
	if countOnly.Matches != 50 || len(countOnly.Lines) != 0 {
		t.Fatalf("limit=0: %+v", countOnly)
	}
}

func TestGrep(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/ingest", "job 123 done\njob abc done\n")
	var sr searchResponse
	if code := get(t, ts.URL+"/grep?e="+url.QueryEscape(`job \d+`), &sr); code != http.StatusOK {
		t.Fatalf("grep status %d", code)
	}
	if sr.Matches != 1 {
		t.Fatalf("grep: %+v", sr)
	}
	var er errorResponse
	if code := get(t, ts.URL+"/grep?e="+url.QueryEscape(`(bad`), &er); code != http.StatusBadRequest {
		t.Fatalf("bad pattern status %d", code)
	}
}

func TestSnapshotAndRangeSearch(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/ingest", "early alpha\nearly alpha two")
	cut := time.Now().UTC()
	resp, err := http.Post(ts.URL+"/snapshot?time="+url.QueryEscape(cut.Format(time.RFC3339)), "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	post(t, ts.URL+"/ingest", "late alpha three")
	post(t, ts.URL+"/flush", "")
	var sr searchResponse
	get(t, ts.URL+"/search?q=alpha&to="+url.QueryEscape(cut.Format(time.RFC3339)), &sr)
	if sr.Matches != 2 {
		t.Fatalf("range search: %+v", sr)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/ingest", strings.Repeat("some log line content here\n", 200))
	post(t, ts.URL+"/flush", "")
	var st statsResponse
	get(t, ts.URL+"/stats", &st)
	if st.Lines != 200 || st.RawBytes == 0 || st.DataPages == 0 {
		t.Fatalf("stats: %+v", st)
	}
	var sr searchResponse
	get(t, ts.URL+"/search?q=content", &sr)
	get(t, ts.URL+"/stats", &st)
	if st.QueriesServed != 1 {
		t.Fatalf("queries served = %d", st.QueriesServed)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/ingest", http.StatusMethodNotAllowed},
		{"GET", "/flush", http.StatusMethodNotAllowed},
		{"GET", "/snapshot", http.StatusMethodNotAllowed},
		{"GET", "/search", http.StatusBadRequest},                   // missing q
		{"GET", "/search?q=x&limit=-1", http.StatusBadRequest},      // bad limit
		{"GET", "/search?q=x&from=notatime", http.StatusBadRequest}, // bad time
		{"GET", "/search?q=" + url.QueryEscape("((("), http.StatusBadRequest},
		{"GET", "/grep", http.StatusBadRequest},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
		}
	}
	// Searching an empty engine is a client error, not a crash.
	var er errorResponse
	if code := get(t, ts.URL+"/search?q=x", &er); code != http.StatusBadRequest {
		t.Errorf("empty engine search status %d", code)
	}
	// Health always answers.
	var ok map[string]bool
	if code := get(t, ts.URL+"/healthz", &ok); code != http.StatusOK || !ok["ok"] {
		t.Error("healthz")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/ingest", strings.Repeat("metric probe line content\n", 300))
	post(t, ts.URL+"/flush", "")
	var sr searchResponse
	get(t, ts.URL+"/search?q=probe", &sr)
	if sr.Matches == 0 {
		t.Fatal("search found nothing; metrics assertions would be vacuous")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body := readAll(t, resp)
	// One representative series from each instrumented layer.
	for _, want := range []string{
		"# TYPE mithrilog_ingest_lines_total counter",
		"mithrilog_ingest_lines_total 300",
		"mithrilog_ingest_compressed_bytes_total",
		"mithrilog_search_queries_total{path=\"accelerated\"} 1",
		"mithrilog_search_stage_seconds_bucket{stage=\"parse\",le=\"+Inf\"}",
		"mithrilog_search_stage_seconds_bucket{stage=\"scan\",le=\"+Inf\"}",
		"mithrilog_search_sim_seconds_total{component=\"stream\"}",
		"mithrilog_storage_page_reads_total{link=\"internal\"}",
		"mithrilog_storage_pages",
		"mithrilog_hwsim_pipeline_utilization{pipeline=\"0\"}",
		"mithrilog_hwsim_pipeline_wire_gbps 3.2",
		"mithrilog_hwsim_effective_filter_gbps",
		"mithrilog_http_requests_total{endpoint=\"/ingest\",code=\"200\"} 1",
		"mithrilog_http_request_seconds_bucket{endpoint=\"/search\"",
		"mithrilog_http_in_flight_requests",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/ingest", "alpha one\nbeta two\nalpha three\n")
	var tr traceResponse
	if code := get(t, ts.URL+"/trace?q=alpha", &tr); code != http.StatusOK {
		t.Fatalf("trace status %d", code)
	}
	if tr.Result.Matches != 2 {
		t.Fatalf("trace result: %+v", tr.Result)
	}
	if tr.Trace.Name != "search" || tr.Trace.DurationNs <= 0 {
		t.Fatalf("trace root: %+v", tr.Trace)
	}
	stages := map[string]bool{}
	for _, c := range tr.Trace.Children {
		stages[c.Name] = true
	}
	for _, want := range []string{"parse", "index probe", "configure", "page scan"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (got %v)", want, stages)
		}
	}
	if tr.Trace.Attrs["matches"] != "2" || tr.Trace.Attrs["offloaded"] != "true" {
		t.Errorf("root attrs: %+v", tr.Trace.Attrs)
	}
	// Errors propagate like /search.
	var er errorResponse
	if code := get(t, ts.URL+"/trace", &er); code != http.StatusBadRequest {
		t.Errorf("missing q: status %d", code)
	}
	if code := get(t, ts.URL+"/trace?q="+url.QueryEscape("((("), &er); code != http.StatusBadRequest {
		t.Errorf("bad query: status %d", code)
	}
}

func TestConcurrentClients(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/ingest", strings.Repeat("warm data line\n", 100))
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w%2 == 0 {
					resp, err := http.Post(ts.URL+"/ingest", "text/plain",
						strings.NewReader(fmt.Sprintf("concurrent line %d %d\n", w, i)))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				} else {
					var sr searchResponse
					get(t, ts.URL+"/search?q=warm&limit=0", &sr)
					if sr.Matches < 100 {
						t.Errorf("lost data: %d", sr.Matches)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
