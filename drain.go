package mithrilog

import (
	"fmt"

	"mithrilog/internal/drain"
)

// DrainParams tune the Drain online parser [17] (see internal/drain).
type DrainParams struct {
	// Depth is the number of leading tokens used for tree routing
	// (default 4).
	Depth int
	// SimilarityThreshold is the minimum token similarity to join a group
	// (default 0.5; raise it on logs with long shared prefixes).
	SimilarityThreshold float64
	// MaxChildren bounds routing fan-out before wildcarding (default 100).
	MaxChildren int
}

// DrainLibrary is a template library extracted with Drain. Its compiled
// queries are column-constrained (token@position), using the engine's
// prefix-tree matching support (§4.3).
type DrainLibrary struct {
	p *drain.Parser
}

// ExtractTemplatesDrain parses the lines with Drain and returns the group
// library. In this repository's own evaluation (EXPERIMENTS.md), Drain
// tracks the ground-truth template population most closely of the three
// extractors; FT-tree (ExtractTemplates) remains the paper's §7.1 choice.
func ExtractTemplatesDrain(lines []string, p DrainParams) *DrainLibrary {
	dp := drain.New(drain.Params{
		Depth:               p.Depth,
		SimilarityThreshold: p.SimilarityThreshold,
		MaxChildren:         p.MaxChildren,
	})
	for _, l := range lines {
		dp.Train(l)
	}
	return &DrainLibrary{p: dp}
}

// Len returns the number of groups.
func (d *DrainLibrary) Len() int { return d.p.Len() }

// Template renders group id's template string (wildcards as <*>).
func (d *DrainLibrary) Template(id int) (string, error) {
	if id < 0 || id >= d.p.Len() {
		return "", fmt.Errorf("mithrilog: drain group %d out of range", id)
	}
	return d.p.Groups()[id].TemplateString(), nil
}

// Support returns the number of training lines in group id.
func (d *DrainLibrary) Support(id int) (int, error) {
	if id < 0 || id >= d.p.Len() {
		return 0, fmt.Errorf("mithrilog: drain group %d out of range", id)
	}
	return d.p.Groups()[id].Count, nil
}

// Query compiles group id into a column-constrained engine query over the
// group's constant tokens.
func (d *DrainLibrary) Query(id int) (Query, error) {
	q, err := d.p.Query(id)
	if err != nil {
		return Query{}, err
	}
	return Query{q: q}, nil
}

// Classify returns the group a line belongs to, or -1.
func (d *DrainLibrary) Classify(line string) int { return d.p.Classify(line) }
