package mithrilog

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mithrilog/internal/baseline/softscan"
	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

// TestDifferentialOracle pits the accelerated engine against the
// software full-scan baseline on randomized seeded workloads: for each
// dataset profile, a stream of random token queries (sampled from the
// dataset's own vocabulary, with negations and multi-set unions) must
// produce identical match counts AND identical line multisets across
// the indexed path, the no-index path, and the warm-cache path. The
// oracle is softscan.ScanLines — an independent execution model (LZ4
// column blocks, per-term containment passes) sharing no scan code with
// the engine, so agreement is evidence of semantics, not of shared bugs.
//
// 4 profiles × 60 queries = 240 seeded (dataset, query) pairs, each
// checked on three paths.
func TestDifferentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not short")
	}
	const queriesPerDataset = 60
	profiles := loggen.Profiles()
	// Dataset sizes scaled down from the profile defaults to keep the
	// 720-path sweep fast; proportions no longer matter for correctness.
	lines := map[string]int{
		"BGL2": 3000, "Liberty2": 4000, "Spirit2": 4000, "Thunderbird": 4000,
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ds := loggen.Generate(p, lines[p.Name], 0)

			// Engine under test: indexed, scheduled, with a page cache
			// large enough that warmed pages never evict mid-test.
			eng := Open(Config{CacheBytes: 64 << 20})
			if err := eng.IngestBytes(ds.Lines); err != nil {
				t.Fatal(err)
			}
			if err := eng.Flush(); err != nil {
				t.Fatal(err)
			}
			// Oracle: the MonetDB-like column scanner on its own device.
			oracle, err := softscan.Build(storage.New(storage.Config{}), ds.Lines)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(0xD1FF ^ p.Seed))
			vocab := tokenVocabulary(ds.Lines, rng)
			cachedPages := 0
			for qi := 0; qi < queriesPerDataset; qi++ {
				q := randomQuery(rng, vocab)
				want, err := oracle.ScanLines(q, 0)
				if err != nil {
					t.Fatalf("query %d (%s): oracle: %v", qi, q, err)
				}
				wantLines := sortedLines(want.Lines)

				for _, path := range []struct {
					name string
					opts SearchOptions
				}{
					{"indexed", SearchOptions{CollectLines: true}},
					{"noindex", SearchOptions{CollectLines: true, NoIndex: true}},
					// Second no-index run: every candidate page was just
					// decompressed, so this one runs from the cache.
					{"cached", SearchOptions{CollectLines: true, NoIndex: true}},
				} {
					res, err := eng.SearchQuery(Query{q: q}, path.opts)
					if err != nil {
						t.Fatalf("query %d (%s) [%s]: %v", qi, q, path.name, err)
					}
					if res.Matches != want.Matches {
						t.Errorf("query %d (%s) [%s]: %d matches, oracle %d",
							qi, q, path.name, res.Matches, want.Matches)
						continue
					}
					if got := sortedStrings(res.Lines); !equalLines(got, wantLines) {
						t.Errorf("query %d (%s) [%s]: line sets diverge (first diff: %s)",
							qi, q, path.name, firstDiff(got, wantLines))
					}
					if path.name == "cached" {
						cachedPages += res.CachedPages
					}
				}
			}
			// The cached path must actually have been the cached path.
			if cachedPages == 0 {
				t.Errorf("no query was served from the page cache")
			}
		})
	}
}

// tokenVocabulary samples tokens from the dataset, mixing hot tokens
// (from random lines, weighted by frequency naturally) with a few bogus
// tokens that match nothing — negative lookups exercise the index's
// miss path and pure-negative scans.
func tokenVocabulary(lines [][]byte, rng *rand.Rand) []string {
	seen := make(map[string]bool)
	var vocab []string
	for len(vocab) < 400 {
		line := lines[rng.Intn(len(lines))]
		toks := bytes.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' })
		if len(toks) == 0 {
			continue
		}
		tok := string(toks[rng.Intn(len(toks))])
		if tok == "" || seen[tok] {
			continue
		}
		seen[tok] = true
		vocab = append(vocab, tok)
	}
	for i := 0; i < 12; i++ {
		vocab = append(vocab, fmt.Sprintf("nonexistent-token-%d", i))
	}
	return vocab
}

// randomQuery builds a random union of intersections over the vocabulary:
// 1-2 sets of 1-3 terms, each term negated with probability 1/4. Queries
// that the cuckoo tables cannot hold fall back to software evaluation,
// which is a path under test too.
func randomQuery(rng *rand.Rand, vocab []string) query.Query {
	var q query.Query
	nSets := 1 + rng.Intn(2)
	for s := 0; s < nSets; s++ {
		var set query.Intersection
		nTerms := 1 + rng.Intn(3)
		for i := 0; i < nTerms; i++ {
			term := query.NewTerm(vocab[rng.Intn(len(vocab))])
			term.Negated = rng.Intn(4) == 0
			set.Terms = append(set.Terms, term)
		}
		q.Sets = append(q.Sets, set)
	}
	if err := q.Validate(); err != nil {
		// Random duplicates can produce contradictions (t AND NOT t);
		// those are rejected at parse in the real API, so redraw.
		return randomQuery(rng, vocab)
	}
	return q
}

func sortedLines(lines [][]byte) []string {
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = string(l)
	}
	sort.Strings(out)
	return out
}

func sortedStrings(lines []string) []string {
	out := append([]string(nil), lines...)
	sort.Strings(out)
	return out
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// firstDiff describes the first position where two sorted line sets
// disagree, for actionable failure output.
func firstDiff(got, want []string) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return fmt.Sprintf("at %d: got %q, want %q", i, got[i], want[i])
		}
	}
	return fmt.Sprintf("lengths %d vs %d", len(got), len(want))
}
