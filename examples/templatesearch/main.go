// Templatesearch: the paper's core workload (§4.3, §7.1) end to end —
// generate a synthetic supercomputer log, machine-extract an FT-tree
// template library, compile templates into boolean queries, and run
// single and batched template searches on the engine.
package main

import (
	"fmt"
	"log"
	"sort"

	"mithrilog"
	"mithrilog/internal/loggen"
)

func main() {
	// Generate a scaled-down Liberty2-like dataset (see internal/loggen
	// for the HPC4 substitution rationale).
	ds := loggen.Generate(loggen.Liberty2, 30000, 0)
	lines := make([]string, len(ds.Lines))
	for i, l := range ds.Lines {
		lines[i] = string(l)
	}

	// Extract the template library, as §7.1 does with FT-tree.
	lib := mithrilog.ExtractTemplates(lines, mithrilog.TemplateParams{
		MaxChildren: 40, MinSupport: 5, MaxDepth: 12,
	})
	fmt.Printf("extracted %d templates from %d lines\n\n", lib.Len(), len(lines))

	eng := mithrilog.Open(mithrilog.Config{})
	if err := eng.IngestLines(lines); err != nil {
		log.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}

	// Run the five highest-support template queries individually.
	tpls := lib.Templates()
	sort.Slice(tpls, func(i, j int) bool { return tpls[i].Support > tpls[j].Support })
	fmt.Println("single template queries:")
	var batch []mithrilog.Query
	for i := 0; i < 5 && i < len(tpls); i++ {
		q, err := lib.Query(tpls[i].ID)
		if err != nil {
			log.Fatal(err)
		}
		batch = append(batch, q)
		res, err := eng.SearchQuery(q, mithrilog.SearchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  template %3d: support %5d -> %5d matches, %v simulated (%.1f GB/s effective)\n",
			tpls[i].ID, tpls[i].Support, res.Matches, res.SimElapsed, res.EffectiveGBps)
	}

	// Batch all five into one accelerator configuration (§4: queries
	// joined with unions run concurrently at no performance loss).
	combined := batch[0].Or(batch[1:]...)
	res, err := eng.SearchQuery(combined, mithrilog.SearchOptions{NoIndex: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatched %d templates (%d intersection sets, %d tokens): %d matches, %v simulated\n",
		len(batch), combined.Sets(), len(combined.Tokens()), res.Matches, res.SimElapsed)

	// Classify a few lines back to their templates.
	fmt.Println("\nclassification spot-check:")
	for i := 0; i < 3; i++ {
		id := lib.Classify(lines[i*1000])
		fmt.Printf("  line %5d -> template %d\n", i*1000, id)
	}
}
