// Service: runs the MithriLog HTTP daemon in-process, streams a generated
// log into it, and issues queries over the wire — the deployment shape
// the paper's platform story implies (continuous ingestion, operators and
// detectors querying over HTTP).
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"mithrilog"
	"mithrilog/internal/loggen"
	"mithrilog/internal/server"
)

func main() {
	// Start the service on an ephemeral port.
	eng := mithrilog.Open(mithrilog.Config{})
	ts := httptest.NewServer(server.New(eng))
	defer ts.Close()
	fmt.Println("service listening at", ts.URL)

	// Stream a synthetic Liberty2 log into it.
	ds := loggen.Generate(loggen.Liberty2, 20000, 0)
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", bytes.NewReader(ds.Text()))
	if err != nil {
		log.Fatal(err)
	}
	show("POST /ingest", resp)

	// Boolean token search.
	resp, err = http.Get(ts.URL + "/search?q=" + url.QueryEscape(`link AND down`) + "&limit=2")
	if err != nil {
		log.Fatal(err)
	}
	show("GET /search?q=link AND down", resp)

	// Regex grep.
	resp, err = http.Get(ts.URL + "/grep?e=" + url.QueryEscape(`ladmin\d+/ladmin\d+`) + "&limit=1")
	if err != nil {
		log.Fatal(err)
	}
	show("GET /grep?e=ladmin...", resp)

	// Engine statistics.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	show("GET /stats", resp)
}

func show(title string, resp *http.Response) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if len(body) > 400 {
		body = append(body[:400], []byte("...")...)
	}
	fmt.Printf("\n%s -> %s\n%s\n", title, resp.Status, bytes.TrimSpace(body))
}
