// Quickstart: ingest a few log lines and run boolean token queries
// through the MithriLog engine, printing matches and the simulated
// near-storage platform timing.
package main

import (
	"fmt"
	"log"

	"mithrilog"
)

func main() {
	eng := mithrilog.Open(mithrilog.Config{})

	// A handful of lines shaped like the paper's Figure 1 excerpt.
	lines := []string{
		"R24-M0-NC-I:J18-U01 RAS KERNEL INFO instruction cache parity error corrected",
		"R24-M0-N3-C:J12-U11 RAS KERNEL FATAL data TLB error interrupt",
		"R17-M1-N2-C:J14-U01 RAS KERNEL INFO generating core.2275",
		"R24-M0-NC-I:J18-U01 RAS APP FATAL ciod: failed to read message prefix on control stream",
		"R02-M1-N0-C:J09-U11 RAS KERNEL INFO instruction cache parity error corrected",
		"R63-M0-NE-I:J18-U11 RAS MMCS WARNING machine check interrupt",
	}
	if err := eng.IngestLines(lines); err != nil {
		log.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}

	// A union-of-intersections query, exactly the form the accelerator
	// offloads: KERNEL problems that are not routine INFO, or any ciod
	// failure.
	const expr = `(RAS AND KERNEL AND NOT INFO) OR (ciod: AND failed)`
	res, err := eng.Search(expr, mithrilog.SearchOptions{CollectLines: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %s\n", expr)
	fmt.Printf("matches: %d of %d lines (offloaded=%v)\n", res.Matches, len(lines), res.Offloaded)
	for _, l := range res.Lines {
		fmt.Println("  " + l)
	}

	st := eng.Stats()
	fmt.Printf("\nengine: %d lines, %.2fx LZAH compression, %d data pages\n",
		st.Lines, st.CompressionRatio, st.DataPages)
	fmt.Printf("simulated query time on the modeled FPGA platform: %v\n", res.SimElapsed)
}
