// Batchqueries: demonstrates the §7.4 constant-throughput property —
// MithriLog evaluates 1, 2, 4, and 8 concurrent queries (joined with OR
// into one accelerator configuration) at essentially the same simulated
// time, while a software scanner slows down with every added term.
package main

import (
	"fmt"
	"log"
	"time"

	"mithrilog"
	"mithrilog/internal/baseline/softscan"
	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

func main() {
	ds := loggen.Generate(loggen.Thunderbird, 40000, 0)
	lines := make([]string, len(ds.Lines))
	for i, l := range ds.Lines {
		lines[i] = string(l)
	}

	eng := mithrilog.Open(mithrilog.Config{})
	if err := eng.IngestLines(lines); err != nil {
		log.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}
	scanner, err := softscan.Build(storage.New(storage.Config{}), ds.Lines)
	if err != nil {
		log.Fatal(err)
	}

	// Eight distinct selective queries.
	exprs := []string{
		`lustre AND recovery`,
		`heartbeat AND missed`,
		`ECC AND error`,
		`scheduler AND restarted`,
		`authentication AND failure`,
		`link AND down`,
		`NFS AND responding`,
		`checkpoint AND latency`,
	}
	queries := make([]mithrilog.Query, len(exprs))
	for i, e := range exprs {
		queries[i] = mithrilog.MustParseQuery(e)
	}

	fmt.Printf("dataset: %s, %d lines, %.1f MB\n\n", ds.Name, len(lines), float64(ds.SizeBytes())/1e6)
	fmt.Printf("%8s %14s %18s %16s\n", "batch", "matches", "MithriLog (sim)", "software scan")
	for _, n := range []int{1, 2, 4, 8} {
		batch := queries[0]
		if n > 1 {
			batch = batch.Or(queries[1:n]...)
		}
		res, err := eng.SearchQuery(batch, mithrilog.SearchOptions{NoIndex: true})
		if err != nil {
			log.Fatal(err)
		}
		// Software comparison: the same batch through the full-scan engine.
		sq, err := query.Parse(batch.String())
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		sres, err := scanner.Scan(sq, 0)
		if err != nil {
			log.Fatal(err)
		}
		_ = t0
		fmt.Printf("%8d %14d %18v %16v\n", n, res.Matches, res.SimElapsed, sres.Elapsed)
	}
	fmt.Println("\nMithriLog's simulated time stays flat as the batch grows — the")
	fmt.Println("cuckoo hash evaluates all intersection sets in the same cycles —")
	fmt.Println("while the software scanner pays one containment pass per term.")
}
