// Compression: a tour of LZAH (§5) against LZRW1, LZ4, and Gzip on a
// generated log — the Table 5 comparison — plus the newline-realignment
// ablation that motivates LZAH's log-specific design.
package main

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"log"
	"time"

	"mithrilog/internal/loggen"
	"mithrilog/internal/lz4"
	"mithrilog/internal/lzah"
	"mithrilog/internal/lzrw"
)

func main() {
	ds := loggen.Generate(loggen.Spirit2, 50000, 0)
	src := ds.Text()
	fmt.Printf("dataset: %s, %d lines, %.1f MB\n\n", ds.Name, len(ds.Lines), float64(len(src))/1e6)

	fmt.Printf("%-22s %10s %10s %12s %12s\n", "algorithm", "ratio", "comp MB", "comp MB/s", "decomp MB/s")

	run := func(name string, compress func([]byte) []byte, decompress func([]byte) []byte) {
		t0 := time.Now()
		comp := compress(src)
		ct := time.Since(t0)
		t0 = time.Now()
		out := decompress(comp)
		dt := time.Since(t0)
		if !bytes.Equal(out, src) {
			log.Fatalf("%s: round trip failed", name)
		}
		fmt.Printf("%-22s %9.2fx %10.2f %12.0f %12.0f\n",
			name, float64(len(src))/float64(len(comp)), float64(len(comp))/1e6,
			float64(len(src))/1e6/ct.Seconds(), float64(len(src))/1e6/dt.Seconds())
	}

	lzahCodec := lzah.NewCodec(lzah.Options{})
	run("LZAH (16 KiB table)",
		func(b []byte) []byte { return lzahCodec.Compress(nil, b) },
		func(b []byte) []byte {
			out, err := lzahCodec.Decompress(nil, b)
			if err != nil {
				log.Fatal(err)
			}
			return out
		})

	blind := lzah.NewCodec(lzah.Options{DisableNewlineAlign: true})
	run("LZAH (no NL align)",
		func(b []byte) []byte { return blind.Compress(nil, b) },
		func(b []byte) []byte {
			out, err := blind.Decompress(nil, b)
			if err != nil {
				log.Fatal(err)
			}
			return out
		})

	run("LZRW1",
		func(b []byte) []byte { return lzrw.NewCompressor().Compress(nil, b) },
		func(b []byte) []byte {
			out, err := lzrw.Decompress(nil, b)
			if err != nil {
				log.Fatal(err)
			}
			return out
		})

	run("LZ4 (block)",
		func(b []byte) []byte { return lz4.NewCompressor().Compress(nil, b) },
		func(b []byte) []byte {
			out, err := lz4.Decompress(nil, b)
			if err != nil {
				log.Fatal(err)
			}
			return out
		})

	run("Gzip (stdlib)",
		func(b []byte) []byte {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			if _, err := zw.Write(b); err != nil {
				log.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				log.Fatal(err)
			}
			return buf.Bytes()
		},
		func(b []byte) []byte {
			zr, err := gzip.NewReader(bytes.NewReader(b))
			if err != nil {
				log.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(zr); err != nil {
				log.Fatal(err)
			}
			return buf.Bytes()
		})

	fmt.Println("\nThe hardware LZAH decoder is deterministic: one 16-byte word per")
	fmt.Println("cycle, 3.2 GB/s at 200 MHz regardless of content (Table 4). The")
	fmt.Println("software numbers above are functional-model speeds, not the")
	fmt.Println("accelerator's; Table 5's *ordering* (Gzip > LZ4 > LZAH/LZRW1) is")
	fmt.Println("what this reproduction preserves.")
}
