// Anomaly: the full downstream pipeline the paper motivates (§1, §8) —
// ingest a log, extract templates, tag every line at filter speed, and
// run PCA-based anomaly detection over template-count windows. A burst of
// abnormal lines is injected mid-log; the detector should flag exactly
// those windows.
package main

import (
	"fmt"
	"log"
	"strings"

	"mithrilog"
	"mithrilog/internal/loggen"
)

func main() {
	// Normal traffic from the Spirit2 profile...
	ds := loggen.Generate(loggen.Spirit2, 20000, 0)
	lines := make([]string, 0, len(ds.Lines)+400)
	for i, l := range ds.Lines {
		// ...with a burst of kernel panics injected around line 12000.
		if i >= 12000 && i < 12400 {
			lines = append(lines, fmt.Sprintf(
				"- 1131567%03d 2005.11.09 sn%d Nov 9 12:30:%02d sn%d/sn%d kernel: PANIC unrecoverable machine state detected",
				i%1000, 100+i%512, i%60, 100+i%512, 100+i%512))
		}
		lines = append(lines, string(l))
	}

	lib := mithrilog.ExtractTemplates(lines, mithrilog.TemplateParams{
		MaxChildren: 40, MinSupport: 5, MaxDepth: 12,
	})
	fmt.Printf("%d lines, %d templates extracted\n", len(lines), lib.Len())

	eng := mithrilog.Open(mithrilog.Config{})
	if err := eng.IngestLines(lines); err != nil {
		log.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}

	// Tag every line at the accelerator's wire speed.
	tag, err := eng.Tag(lib, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tagged %d lines in %d passes (%v simulated); %d untagged, %d multi-tagged\n",
		tag.Lines, tag.Passes, tag.SimElapsed, tag.Untagged, tag.MultiTagged)

	// PCA anomaly detection over 1000-line windows.
	anomalies, err := eng.DetectAnomalies(lib, mithrilog.AnomalyOptions{
		WindowLines: 1000,
		Components:  3,
		Quantile:    0.95,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d anomalous windows:\n", len(anomalies))
	for _, a := range anomalies {
		marker := ""
		if a.FirstLine <= 12400 && a.LastLine >= 12000 {
			marker = "  <-- injected panic burst"
		}
		fmt.Printf("  window %3d (lines %6d-%6d)  score %6.2f%s\n",
			a.Window, a.FirstLine, a.LastLine, a.Score, marker)
	}

	// Cluster windows by template mix.
	assign, err := eng.ClusterWindows(lib, 1000, 3)
	if err != nil {
		log.Fatal(err)
	}
	var sb strings.Builder
	for _, c := range assign {
		fmt.Fprintf(&sb, "%d", c)
	}
	fmt.Printf("\nwindow clusters: %s\n", sb.String())
}
