package mithrilog

import (
	"fmt"

	"mithrilog/internal/ftree"
)

// TemplateParams tune FT-tree template extraction (§2.1.3, §4.3).
type TemplateParams struct {
	// MaxChildren treats a tree position as a variable field when its
	// fan-out exceeds this bound (default 8).
	MaxChildren int
	// MinSupport drops templates seen in fewer lines (default 2).
	MinSupport int
	// MaxDepth caps template length in tokens (default 8).
	MaxDepth int
}

// Template is one extracted log template and its compiled query.
type Template struct {
	// ID within the library.
	ID int
	// Tokens identify the template, ordered by global frequency.
	Tokens []string
	// Support is the number of training lines matching the template.
	Support int
}

// TemplateLibrary is an extracted FT-tree template library.
type TemplateLibrary struct {
	lib *ftree.Library
}

// ExtractTemplates builds an FT-tree over the lines and returns the
// pruned template library, exactly as the paper's query workload is
// machine-generated (§7.1).
func ExtractTemplates(lines []string, p TemplateParams) *TemplateLibrary {
	bs := make([][]byte, len(lines))
	for i, l := range lines {
		bs[i] = []byte(l)
	}
	return &TemplateLibrary{lib: ftree.Extract(bs, ftree.Params{
		MaxChildren: p.MaxChildren,
		MinSupport:  p.MinSupport,
		MaxDepth:    p.MaxDepth,
	})}
}

// Len returns the number of templates.
func (t *TemplateLibrary) Len() int { return t.lib.Len() }

// Templates lists the extracted templates.
func (t *TemplateLibrary) Templates() []Template {
	out := make([]Template, 0, t.lib.Len())
	for _, tpl := range t.lib.Templates() {
		out = append(out, Template{ID: tpl.ID, Tokens: tpl.Tokens, Support: tpl.Support})
	}
	return out
}

// Query compiles template id into its boolean query (§4.3): the path
// tokens as positive terms plus negations of higher-frequency siblings.
func (t *TemplateLibrary) Query(id int) (Query, error) {
	q, err := t.lib.Query(id)
	if err != nil {
		return Query{}, err
	}
	return Query{q: q}, nil
}

// Queries compiles every template.
func (t *TemplateLibrary) Queries() []Query {
	out := make([]Query, 0, t.lib.Len())
	for i := 0; i < t.lib.Len(); i++ {
		q, err := t.Query(i)
		if err == nil {
			out = append(out, q)
		}
	}
	return out
}

// Classify returns the template ID a line belongs to, or -1.
func (t *TemplateLibrary) Classify(line string) int { return t.lib.Classify(line) }

// Describe renders a template for display.
func (t *TemplateLibrary) Describe(id int) (string, error) {
	if id < 0 || id >= t.lib.Len() {
		return "", fmt.Errorf("mithrilog: template %d out of range", id)
	}
	tpl := t.lib.Templates()[id]
	q, err := t.lib.Query(id)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("template %d (support %d): %s", tpl.ID, tpl.Support, q.String()), nil
}
