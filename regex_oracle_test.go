package mithrilog

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"mithrilog/internal/loggen"
)

// This file is the regex differential oracle: the literal-factor index
// prefilter is an optimization, so for every pattern the prefiltered path
// must return a byte-identical RegexResult (matches, lines, counts) to
// the full-scan path and to Go's regexp over the raw dataset — across
// indexed, cached, 1-shard, and 4-shard configurations. The pattern
// generator deliberately mixes shapes the factor extractor can exploit
// (bounded tokens, phrases, alternations, gaps) with shapes it must
// refuse (unbounded fragments, class-torn tokens), so both the
// prefiltered path and the ∅-factor fallback stay pinned.

// rexEscape escapes every non-alphanumeric byte of a sampled token so it
// reads as a literal in both rex and Go regexp syntax. Letters and digits
// are never escaped (escaped letters are meta-classes in both grammars).
func rexEscape(tok string) string {
	var b strings.Builder
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			b.WriteByte(c)
			continue
		}
		b.WriteByte('\\')
		b.WriteByte(c)
	}
	return b.String()
}

// lineTokens splits one dataset line on the index delimiters.
func lineTokens(line []byte) []string {
	return strings.FieldsFunc(string(line), func(r rune) bool {
		return r == ' ' || r == '\t'
	})
}

// regexPatterns derives n seeded patterns from the dataset. Tokens are
// sampled from real lines (adjacent runs stay adjacent), so most shapes
// have matches; a few shapes are deliberately unsatisfiable or
// unfactorable.
func regexPatterns(rng *rand.Rand, lines [][]byte, n int) []string {
	var pats []string
	sample := func(minToks int) []string {
		for {
			toks := lineTokens(lines[rng.Intn(len(lines))])
			if len(toks) >= minToks {
				return toks
			}
		}
	}
	for len(pats) < n {
		switch len(pats) % 13 {
		case 0: // single bounded token
			t := sample(1)
			pats = append(pats, " "+rexEscape(t[rng.Intn(len(t))])+" ")
		case 1: // adjacent bounded pair
			t := sample(3)
			i := rng.Intn(len(t) - 2)
			pats = append(pats, " "+rexEscape(t[i])+" "+rexEscape(t[i+1])+" ")
		case 2: // alternation of two tokens from different lines
			a := sample(1)
			b := sample(1)
			pats = append(pats, " ("+rexEscape(a[rng.Intn(len(a))])+"|"+rexEscape(b[rng.Intn(len(b))])+") ")
		case 3: // two same-line tokens bridged by a gap
			t := sample(4)
			i := rng.Intn(len(t) - 3)
			j := i + 2 + rng.Intn(len(t)-i-2)
			pats = append(pats, " "+rexEscape(t[i])+" .* "+rexEscape(t[j])+" ")
		case 4: // raw unbounded token: no factor, full-scan fallback
			t := sample(1)
			pats = append(pats, rexEscape(t[rng.Intn(len(t))]))
		case 5: // trailing class star unbounds the token: fallback
			t := sample(1)
			pats = append(pats, " "+rexEscape(t[rng.Intn(len(t))])+"[0-9]*")
		case 6: // token followed by an alternation
			t := sample(3)
			i := rng.Intn(len(t) - 2)
			pats = append(pats, " "+rexEscape(t[i])+" ("+rexEscape(t[i+1])+"|no-such-tok) ")
		case 7: // anchored prefix with a digit gap
			t := sample(3)
			pats = append(pats, `^- \d+ .* `+rexEscape(t[len(t)-1])+" ")
		case 8: // adjacent bounded triple
			t := sample(4)
			i := rng.Intn(len(t) - 3)
			pats = append(pats, " "+rexEscape(t[i])+" "+rexEscape(t[i+1])+" "+rexEscape(t[i+2])+" ")
		case 9: // optional space: conjuncts for both the split and fused forms
			t := sample(3)
			i := rng.Intn(len(t) - 2)
			pats = append(pats, " "+rexEscape(t[i])+" ?"+rexEscape(t[i+1])+" ")
		case 10: // mid-token wildcard tears the token into fragments
			for {
				t := sample(1)
				tok := t[rng.Intn(len(t))]
				if len(tok) < 5 {
					continue
				}
				mid := 2 + rng.Intn(len(tok)-4)
				pats = append(pats, " "+rexEscape(tok[:mid])+"."+rexEscape(tok[mid+1:])+" ")
				break
			}
		case 11: // nonexistent token: prefilter yields zero candidates
			pats = append(pats, fmt.Sprintf(" absent-token-%d ", rng.Intn(1000)))
		case 12: // plus on the boundary space keeps the factors bounded
			t := sample(3)
			i := rng.Intn(len(t) - 2)
			pats = append(pats, " +"+rexEscape(t[i])+" +"+rexEscape(t[i+1])+" ")
		}
	}
	return pats
}

// stdlibScan is the ground truth: Go's regexp over the raw lines, in
// ingest order.
func stdlibScan(t *testing.T, pattern string, lines [][]byte) []string {
	t.Helper()
	re, err := regexp.Compile(pattern)
	if err != nil {
		t.Fatalf("stdlib rejects generated pattern %q: %v", pattern, err)
	}
	var out []string
	for _, l := range lines {
		if re.Match(l) {
			out = append(out, string(l))
		}
	}
	return out
}

// assertRegexIdentical demands byte-identical results including order
// (single-engine paths preserve ingest order on every path).
func assertRegexIdentical(t *testing.T, pattern, path string, got RegexResult, want []string) {
	t.Helper()
	if got.Matches != len(want) {
		t.Errorf("%q %s: %d matches, want %d", pattern, path, got.Matches, len(want))
		return
	}
	if !equalLines(got.Lines, want) {
		t.Errorf("%q %s: line sets diverge (first diff: %s)",
			pattern, path, firstDiff(got.Lines, want))
	}
	if got.CandidatePages > got.TotalPages {
		t.Errorf("%q %s: %d candidate pages > %d total", pattern, path, got.CandidatePages, got.TotalPages)
	}
}

// TestRegexDifferentialOracle sweeps seeded patterns over every dataset
// profile and pins four configurations against Go's regexp and against
// each other: full scan, prefiltered, prefiltered with a warm page
// cache, and a 4-shard scatter. ~52 patterns x 4 profiles ≈ 200.
func TestRegexDifferentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not short")
	}
	lines := map[string]int{
		"BGL2": 2000, "Liberty2": 2500, "Spirit2": 2500, "Thunderbird": 2500,
	}
	const patternsPerProfile = 52
	for _, p := range loggen.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ds := loggen.Generate(p, lines[p.Name], 0)
			plain := Open(Config{})
			cached := Open(Config{CacheBytes: 64 << 20})
			sharded := Open(Config{Shards: 4, CacheBytes: 64 << 20})
			for _, e := range []*Engine{plain, cached, sharded} {
				if err := e.IngestBytes(ds.Lines); err != nil {
					t.Fatal(err)
				}
				if err := e.Flush(); err != nil {
					t.Fatal(err)
				}
			}

			rng := rand.New(rand.NewSource(0x8E6E ^ p.Seed))
			prefiltered := 0
			for _, pattern := range regexPatterns(rng, ds.Lines, patternsPerProfile) {
				want := stdlibScan(t, pattern, ds.Lines)

				full, err := plain.SearchRegexOpts(nil, "", pattern,
					RegexOptions{CollectLines: true, NoPrefilter: true})
				if err != nil {
					t.Fatalf("%q full scan: %v", pattern, err)
				}
				if full.Prefiltered {
					t.Fatalf("%q: NoPrefilter result claims the prefiltered path", pattern)
				}
				assertRegexIdentical(t, pattern, "fullscan", full, want)

				pre, err := plain.SearchRegex(pattern, true)
				if err != nil {
					t.Fatalf("%q prefiltered: %v", pattern, err)
				}
				assertRegexIdentical(t, pattern, "prefiltered", pre, want)
				if pre.Prefiltered {
					prefiltered++
				} else if pre.CandidatePages != pre.TotalPages {
					t.Errorf("%q: fallback skipped pages (%d of %d)",
						pattern, pre.TotalPages-pre.CandidatePages, pre.TotalPages)
				}

				// Cold pass populates the page cache; the warm pass must
				// answer identically from cached tokenized pages.
				coldRes, err := cached.SearchRegex(pattern, true)
				if err != nil {
					t.Fatalf("%q cached cold: %v", pattern, err)
				}
				assertRegexIdentical(t, pattern, "cached-cold", coldRes, want)
				warmRes, err := cached.SearchRegex(pattern, true)
				if err != nil {
					t.Fatalf("%q cached warm: %v", pattern, err)
				}
				assertRegexIdentical(t, pattern, "cached-warm", warmRes, want)

				// 4-shard scatter: canonical merge order, no partial results.
				sh, err := sharded.SearchRegex(pattern, true)
				if err != nil {
					t.Fatalf("%q sharded: %v", pattern, err)
				}
				if sh.Partial || len(sh.FailedShards) > 0 {
					t.Fatalf("%q sharded: unexpected partial result: %+v", pattern, sh.FailedShards)
				}
				if sh.Matches != len(want) {
					t.Errorf("%q sharded: %d matches, want %d", pattern, sh.Matches, len(want))
				} else if !equalLines(sortedStrings(sh.Lines), sortedStrings(want)) {
					t.Errorf("%q sharded: line sets diverge (first diff: %s)",
						pattern, firstDiff(sortedStrings(sh.Lines), sortedStrings(want)))
				}
			}
			// The sweep must exercise the prefiltered path, not silently
			// degrade to fallback everywhere.
			if prefiltered < patternsPerProfile/3 {
				t.Errorf("only %d of %d patterns took the prefiltered path", prefiltered, patternsPerProfile)
			}
		})
	}
}
