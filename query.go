package mithrilog

import "mithrilog/internal/query"

// Query is a compiled boolean token query: a union of intersection sets
// of possibly negated tokens — the exact form the accelerator offloads.
type Query struct {
	q query.Query
}

// ParseQuery compiles a query expression (see Engine.Search for the
// grammar). Arbitrary boolean nesting is flattened to the offloadable
// disjunctive normal form.
func ParseQuery(expr string) (Query, error) {
	q, err := query.Parse(expr)
	if err != nil {
		return Query{}, err
	}
	return Query{q: q}, nil
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(expr string) Query {
	q, err := ParseQuery(expr)
	if err != nil {
		panic(err)
	}
	return q
}

// Or joins queries into one batch evaluated concurrently by the engine
// (§4: multiple queries joined with unions execute at no performance
// loss, bounded by the accelerator's intersection-set capacity).
func (a Query) Or(others ...Query) Query {
	qs := make([]query.Query, len(others))
	for i, o := range others {
		qs[i] = o.q
	}
	return Query{q: a.q.Or(qs...)}
}

// Simplify removes redundant intersection sets (duplicates and sets
// subsumed by less-constrained ones), often letting larger OR-batches fit
// the accelerator's intersection-set capacity.
func (a Query) Simplify() Query { return Query{q: a.q.Simplify()} }

// Sets returns the number of intersection sets; offload requires this to
// fit the accelerator's flag pairs (8 in the prototype configuration).
func (a Query) Sets() int { return len(a.q.Sets) }

// Tokens returns the distinct tokens the query mentions; offload requires
// these to fit the cuckoo hash table (≈128 tokens at 256 rows).
func (a Query) Tokens() []string { return a.q.Tokens() }

// Match evaluates the query against a single log line in software — the
// reference semantics the accelerator reproduces.
func (a Query) Match(line string) bool { return a.q.Match(line) }

// String renders the query in the query language.
func (a Query) String() string { return a.q.String() }
