// Command perfbench runs the repeatable wall-clock benchmark harness
// (internal/perf) and maintains the BENCH_<n>.json perf trajectory at the
// repository root. See PERFORMANCE.md for the workload matrix, the report
// schema, and how to read a diff.
//
// Usage:
//
//	perfbench                         run the matrix, print a summary
//	perfbench -out BENCH_6.json       ... and append the run to a report
//	perfbench -label pr6 -prev old.json -out BENCH_6.json
//	                                  carry runs forward from old.json
//	perfbench -baseline BENCH_6.json  diff against the last recorded run;
//	                                  exit 1 on >10% headline regression
//	perfbench -quick                  reduced CI-smoke matrix
//	perfbench -validate BENCH_6.json  schema-check a report and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mithrilog/internal/perf"
)

func main() {
	var (
		out      = flag.String("out", "", "write/append the run to this report file")
		prev     = flag.String("prev", "", "carry the runs of this report into -out before appending")
		label    = flag.String("label", "dev", "label for the recorded run")
		lines    = flag.Int("lines", 0, "dataset lines (0 = default for the mode)")
		rounds   = flag.Int("rounds", 0, "queries per matrix point (0 = default for the mode)")
		quick    = flag.Bool("quick", false, "reduced matrix for CI smoke runs")
		shards   = flag.String("shards", "", "comma-separated fleet widths for the query matrix (default 1,4)")
		baseline = flag.String("baseline", "", "diff this run against the last run in the given report; exit 1 on regression")
		regress  = flag.Float64("regress", perf.DefaultRegressionPct, "regression gate percentage for -baseline")
		validate = flag.String("validate", "", "validate a report file's schema and exit")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *validate != "" {
		rep, err := perf.ReadReport(*validate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid (%s, %d runs, last %q)\n",
			*validate, rep.Schema, len(rep.Runs), rep.Runs[len(rep.Runs)-1].Label)
		return
	}

	opts := perf.Options{
		Label:  *label,
		Lines:  *lines,
		Rounds: *rounds,
		Quick:  *quick,
	}
	if *shards != "" {
		for _, part := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fatal(fmt.Errorf("bad -shards value %q", part))
			}
			opts.Shards = append(opts.Shards, n)
		}
	}
	if !*quiet {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	run, err := perf.Measure(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(perf.FormatRun(&run))

	if *out != "" {
		rep := &perf.Report{Schema: perf.Schema}
		src := *prev
		if src == "" {
			if _, err := os.Stat(*out); err == nil {
				src = *out
			}
		}
		if src != "" {
			old, err := perf.ReadReport(src)
			if err != nil {
				fatal(fmt.Errorf("read %s: %w", src, err))
			}
			rep = old
		}
		rep.Schema = perf.Schema
		rep.Runs = append(rep.Runs, run)
		if err := perf.WriteReport(*out, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d runs)\n", *out, len(rep.Runs))
	}

	if *baseline != "" {
		rep, err := perf.ReadReport(*baseline)
		if err != nil {
			fatal(err)
		}
		base, _ := rep.Last()
		if err := perf.Comparable(&base, &run); err != nil {
			fmt.Fprintf(os.Stderr, "warning: %v — diff is informational only\n", err)
		}
		deltas, regressed := perf.Diff(&base, &run, *regress)
		fmt.Printf("\nbaseline %q -> %q (gate: -%.0f%%)\n%s",
			base.Label, run.Label, *regress, perf.FormatDeltas(deltas))
		if regressed {
			fmt.Fprintln(os.Stderr, "perfbench: headline regression beyond gate")
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfbench:", err)
	os.Exit(1)
}
