// Command mithrilogd runs a MithriLog engine as an HTTP log analytics
// service: logs stream in over POST /ingest, queries arrive over GET
// /search and /grep, and the store can be persisted with periodic saves.
//
// Usage:
//
//	mithrilogd [-addr :8080] [-load store.mlog] [-save store.mlog] [-save-every 5m]
//	           [-cache-mb 64] [-max-in-flight 8] [-queue-depth 64] [-query-timeout 30s]
//	           [-shards 1] [-tenant-in-flight 0] [-shard-timeout 0]
//
// With -shards N (N > 1) the daemon runs an N-shard fleet behind the
// scatter-gather router: ingest accepts a ?tenant= parameter for
// placement, searches fan out with per-shard deadlines, and /metrics
// federates every shard's registry. Sharded stores persist as segment
// streams (WriteSegments/Reopen) rather than the single-engine save
// format, so a -save file written at -shards 1 cannot be -load-ed at
// -shards 4 and vice versa.
//
// Endpoints are documented in internal/server. Example session:
//
//	mithrilogd -addr :8080 &
//	curl -X POST --data-binary @liberty2.log localhost:8080/ingest
//	curl 'localhost:8080/search?q=failed+AND+NOT+pbs_mom:&limit=5'
//	curl 'localhost:8080/stats'
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"mithrilog"
	"mithrilog/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	load := flag.String("load", "", "load a saved store at startup")
	save := flag.String("save", "", "save the store to this path (with -save-every, periodically)")
	saveEvery := flag.Duration("save-every", 0, "periodic save interval (0 = only on demand)")
	cacheMB := flag.Int64("cache-mb", 64, "decompressed-page cache size in MiB (0 disables)")
	maxInFlight := flag.Int("max-in-flight", 0, "queries executing concurrently (0 = default 8)")
	queueDepth := flag.Int("queue-depth", 0, "queries waiting beyond the in-flight limit before 429 (0 = default 64)")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-query deadline covering queue wait and scan (0 disables)")
	shards := flag.Int("shards", 1, "engine shards behind the scatter-gather router (1 = single engine)")
	tenantInFlight := flag.Int("tenant-in-flight", 0, "per-tenant concurrent-query quota when sharded (0 = default)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard deadline for scattered queries (0 = query timeout only)")
	flag.Parse()

	cfg := mithrilog.Config{
		CacheBytes:     *cacheMB << 20,
		MaxInFlight:    *maxInFlight,
		QueueDepth:     *queueDepth,
		QueryTimeout:   *queryTimeout,
		Shards:         *shards,
		TenantInFlight: *tenantInFlight,
		ShardTimeout:   *shardTimeout,
	}
	var eng *mithrilog.Engine
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
		if cfg.Shards > 1 {
			// Sharded stores are segment streams; Reopen also checks
			// that the stream really is a fleet stream and adopts the
			// shard count it records.
			eng, err = mithrilog.Reopen(cfg, f)
		} else {
			eng, err = mithrilog.Load(cfg, f)
		}
		f.Close()
		if err != nil {
			log.Fatalf("load: %v", err)
		}
		st := eng.Stats()
		log.Printf("loaded %s: %d lines, %d pages, %d shard(s)", *load, st.Lines, st.DataPages, st.Shards)
	} else {
		eng = mithrilog.Open(cfg)
	}

	if *save != "" && *saveEvery > 0 {
		go func() {
			for range time.Tick(*saveEvery) {
				if err := saveTo(eng, *save); err != nil {
					log.Printf("periodic save: %v", err)
				} else {
					log.Printf("saved store to %s", *save)
				}
			}
		}()
	}

	srv := server.New(eng)
	log.Printf("mithrilogd listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}

// saveTo writes the store atomically via a temp file rename.
func saveTo(eng *mithrilog.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// A sharded engine has no single-engine save format; its durable
	// form is the fleet segment stream.
	write := eng.Save
	if eng.Shards() > 1 {
		write = eng.WriteSegments
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
