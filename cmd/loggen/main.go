// Command loggen generates the synthetic HPC log datasets that stand in
// for the paper's HPC4 logs (see internal/loggen for the substitution
// rationale). Each dataset is written as a plain newline-separated text
// file suitable for cmd/mithrilog and the examples.
//
// Usage:
//
//	loggen [-dir ./data] [-lines 100000] [-dataset Liberty2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"mithrilog/internal/loggen"
)

func main() {
	dir := flag.String("dir", "data", "output directory")
	lines := flag.Int("lines", 0, "lines per dataset (0 = profile default)")
	dataset := flag.String("dataset", "", "generate only this dataset (default: all four)")
	seed := flag.Int64("seed", 0, "generation seed (0 = profile default)")
	flag.Parse()

	profiles := loggen.Profiles()
	if *dataset != "" {
		p, ok := loggen.ProfileByName(*dataset)
		if !ok {
			var names []string
			for _, pp := range profiles {
				names = append(names, pp.Name)
			}
			log.Fatalf("unknown dataset %q (have %s)", *dataset, strings.Join(names, ", "))
		}
		profiles = []loggen.Profile{p}
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, p := range profiles {
		ds := loggen.Generate(p, *lines, *seed)
		path := filepath.Join(*dir, strings.ToLower(p.Name)+".log")
		if err := os.WriteFile(path, ds.Text(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %9d lines %8.1f MB (%d templates in use)\n",
			path, len(ds.Lines), float64(ds.SizeBytes())/1e6, ds.TrueTemplates)
	}
}
