// Command mithrilint runs MithriLog's project-invariant analyzer suite
// (internal/lint) over the module:
//
//	go run ./cmd/mithrilint ./...          # whole module (CI does this)
//	go run ./cmd/mithrilint -only lockorder ./internal/storage/...
//	go run ./cmd/mithrilint -json ./...    # machine-readable findings
//	go run ./cmd/mithrilint -strict-ignores ./...  # also flag stale ignores (CI)
//	go run ./cmd/mithrilint -hotpaths ./...        # list hotpath-marked functions
//	go run ./cmd/mithrilint -changed origin/main ./...  # PR mode: changed pkgs + dependents
//	go run ./cmd/mithrilint -timing -budget 120s ./...  # per-analyzer wall clock, hard cap
//	go run ./cmd/mithrilint -list
//
// -changed narrows *reporting* to the packages whose files differ from
// the given git ref (plus their transitive reverse-dependents, since a
// change can surface findings in importers). The whole module is still
// loaded, so the program-wide fact layers (call graph, escape summaries)
// see identical input and the selected findings match a full run's.
// -budget makes the run fail with exit 2 if analysis exceeds the given
// wall-clock duration — CI's guard against the suite outgrowing its
// per-PR latency allowance; -timing prints where the time went.
//
// Plain output is one finding per line in the usual file:line:col form;
// -json emits a JSON array of finding objects on stdout instead. Exit
// status: 0 when the tree is clean, 1 when findings were reported, 2 on a
// load or internal error (bad flags, unknown analyzer, type errors in the
// tree). The suite is self-contained (stdlib only), so the driver needs
// no tool installation — it cannot be plugged into `go vet -vettool`
// (that protocol needs the unitchecker wiring from golang.org/x/tools, a
// dependency this repository does not carry), which is why CI runs the
// command directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"mithrilog/internal/lint"
)

// Exit codes, also documented in LINT.md and relied on by CI.
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("C", ".", "module directory to analyze")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	strictIgnores := flag.Bool("strict-ignores", false,
		"also report mithrilint:ignore directives that suppress no findings (CI uses this)")
	hotpaths := flag.Bool("hotpaths", false,
		"print the //mithrilint:hotpath-marked functions, one per line, and exit")
	changed := flag.String("changed", "",
		"report only packages with files changed since this git ref, plus their reverse-dependents")
	timing := flag.Bool("timing", false, "print per-analyzer wall-clock timings to stderr")
	budget := flag.Duration("budget", 0,
		"fail (exit 2) if analysis wall clock exceeds this duration (0 = no limit)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mithrilint [-list] [-only a,b] [-json] [-strict-ignores] [-hotpaths] [-changed ref] [-timing] [-budget d] [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mithrilint: unknown analyzer %q (try -list)\n", name)
				os.Exit(exitError)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	loader := lint.NewLoader(*dir)
	pkgs, prog, err := loader.LoadModule(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mithrilint: %v\n", err)
		os.Exit(exitError)
	}

	if *hotpaths {
		// The machine-readable hot-path inventory: CI diffs this against
		// the list committed in PERFORMANCE.md so code and doc can't drift.
		for _, fn := range lint.HotpathFunctions(prog) {
			fmt.Println(fn)
		}
		return
	}

	if *changed != "" {
		absDir, err := filepath.Abs(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mithrilint: %v\n", err)
			os.Exit(exitError)
		}
		files, err := changedGoFiles(absDir, *changed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mithrilint: -changed %s: %v\n", *changed, err)
			os.Exit(exitError)
		}
		seeds := lint.PackagesForFiles(pkgs, absDir, files)
		if len(seeds) == 0 {
			fmt.Fprintf(os.Stderr, "mithrilint: no Go packages changed since %s\n", *changed)
			return
		}
		pkgs = lint.Dependents(prog, pkgs, seeds)
		fmt.Fprintf(os.Stderr, "mithrilint: %d changed package(s) since %s, %d selected with dependents\n",
			len(seeds), *changed, len(pkgs))
	}

	start := time.Now()
	diags, timings := lint.RunTimed(prog, pkgs, analyzers, lint.RunOptions{StrictIgnores: *strictIgnores})
	elapsed := time.Since(start)
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "mithrilint: %-14s %8.1fms\n", tm.Name, float64(tm.Elapsed.Microseconds())/1000)
		}
		fmt.Fprintf(os.Stderr, "mithrilint: %-14s %8.1fms\n", "total", float64(elapsed.Microseconds())/1000)
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				Analyzer: d.Analyzer.Name,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "mithrilint: encoding findings: %v\n", err)
			os.Exit(exitError)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mithrilint: %d finding(s)\n", len(diags))
		os.Exit(exitFindings)
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "mithrilint: analysis took %v, over the %v budget\n",
			elapsed.Round(time.Millisecond), *budget)
		os.Exit(exitError)
	}
}

// changedGoFiles lists the module-relative .go paths that differ from
// ref, plus untracked ones: the PR-mode selection seed. Deleted files
// still appear in the diff; PackagesForFiles drops them when no loaded
// package claims their directory anymore.
func changedGoFiles(dir, ref string) ([]string, error) {
	var files []string
	for _, args := range [][]string{
		{"diff", "--name-only", ref, "--"},
		{"ls-files", "--others", "--exclude-standard"},
	} {
		cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
		out, err := cmd.Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
				return nil, fmt.Errorf("git %s: %s", args[0], strings.TrimSpace(string(ee.Stderr)))
			}
			return nil, fmt.Errorf("git %s: %v", args[0], err)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if line = strings.TrimSpace(line); strings.HasSuffix(line, ".go") {
				files = append(files, line)
			}
		}
	}
	return files, nil
}
