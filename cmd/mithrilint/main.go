// Command mithrilint runs MithriLog's project-invariant analyzer suite
// (internal/lint) over the module:
//
//	go run ./cmd/mithrilint ./...          # whole module (CI does this)
//	go run ./cmd/mithrilint -only lockorder ./internal/storage/...
//	go run ./cmd/mithrilint -list
//
// Output is one finding per line in the usual file:line:col form, and the
// exit status is 1 when anything was found. The suite is self-contained
// (stdlib only), so the driver needs no tool installation — it cannot be
// plugged into `go vet -vettool` (that protocol needs the unitchecker
// wiring from golang.org/x/tools, a dependency this repository does not
// carry), which is why CI runs the command directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mithrilog/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("C", ".", "module directory to analyze")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mithrilint [-list] [-only a,b] [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mithrilint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	loader := lint.NewLoader(*dir)
	pkgs, prog, err := loader.LoadModule(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mithrilint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mithrilint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
