// Command mithrilint runs MithriLog's project-invariant analyzer suite
// (internal/lint) over the module:
//
//	go run ./cmd/mithrilint ./...          # whole module (CI does this)
//	go run ./cmd/mithrilint -only lockorder ./internal/storage/...
//	go run ./cmd/mithrilint -json ./...    # machine-readable findings
//	go run ./cmd/mithrilint -strict-ignores ./...  # also flag stale ignores (CI)
//	go run ./cmd/mithrilint -hotpaths ./...        # list hotpath-marked functions
//	go run ./cmd/mithrilint -list
//
// Plain output is one finding per line in the usual file:line:col form;
// -json emits a JSON array of finding objects on stdout instead. Exit
// status: 0 when the tree is clean, 1 when findings were reported, 2 on a
// load or internal error (bad flags, unknown analyzer, type errors in the
// tree). The suite is self-contained (stdlib only), so the driver needs
// no tool installation — it cannot be plugged into `go vet -vettool`
// (that protocol needs the unitchecker wiring from golang.org/x/tools, a
// dependency this repository does not carry), which is why CI runs the
// command directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mithrilog/internal/lint"
)

// Exit codes, also documented in LINT.md and relied on by CI.
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("C", ".", "module directory to analyze")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	strictIgnores := flag.Bool("strict-ignores", false,
		"also report mithrilint:ignore directives that suppress no findings (CI uses this)")
	hotpaths := flag.Bool("hotpaths", false,
		"print the //mithrilint:hotpath-marked functions, one per line, and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mithrilint [-list] [-only a,b] [-json] [-strict-ignores] [-hotpaths] [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mithrilint: unknown analyzer %q (try -list)\n", name)
				os.Exit(exitError)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	loader := lint.NewLoader(*dir)
	pkgs, prog, err := loader.LoadModule(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mithrilint: %v\n", err)
		os.Exit(exitError)
	}

	if *hotpaths {
		// The machine-readable hot-path inventory: CI diffs this against
		// the list committed in PERFORMANCE.md so code and doc can't drift.
		for _, fn := range lint.HotpathFunctions(prog) {
			fmt.Println(fn)
		}
		return
	}

	diags := lint.RunWithOptions(prog, pkgs, analyzers, lint.RunOptions{StrictIgnores: *strictIgnores})

	if *asJSON {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				Analyzer: d.Analyzer.Name,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "mithrilint: encoding findings: %v\n", err)
			os.Exit(exitError)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mithrilint: %d finding(s)\n", len(diags))
		os.Exit(exitFindings)
	}
}
