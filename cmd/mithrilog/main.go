// Command mithrilog is a one-shot log analytics CLI over the MithriLog
// engine: it ingests a log file into the simulated near-storage system
// and runs queries or template extraction against it.
//
// Usage:
//
//	mithrilog ingest -o store.mlog file.log           # build a persistent store
//	mithrilog search -q 'failed AND NOT pbs_mom:' [-noindex] [-limit 10] file.log
//	mithrilog search -q 'failed' -store store.mlog     # query a saved store
//	mithrilog grep -e 'ib_sm\.x\[\d+\]' file.log      # regex scan
//	mithrilog templates [-top 20] file.log
//	mithrilog stats file.log
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"mithrilog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mithrilog: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "ingest":
		runIngest(os.Args[2:])
	case "search":
		runSearch(os.Args[2:])
	case "grep":
		runGrep(os.Args[2:])
	case "export":
		runExport(os.Args[2:])
	case "templates":
		runTemplates(os.Args[2:])
	case "stats":
		runStats(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mithrilog ingest -o store.mlog file.log
  mithrilog search -q 'expr' [-noindex] [-limit N] (file.log | -store store.mlog)
  mithrilog grep -e 'pattern' [-limit N] (file.log | -store store.mlog)
  mithrilog export (file.log | -store store.mlog) > all.log
  mithrilog templates [-top N] file.log
  mithrilog stats (file.log | -store store.mlog)`)
	os.Exit(2)
}

func loadStore(path string) *mithrilog.Engine {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	eng, err := mithrilog.Load(mithrilog.Config{}, f)
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

// engineFor resolves the -store flag or a log file argument.
func engineFor(store string, fs *flag.FlagSet) *mithrilog.Engine {
	if store != "" {
		if fs.NArg() != 0 {
			usage()
		}
		return loadStore(store)
	}
	if fs.NArg() != 1 {
		usage()
	}
	return ingestFile(fs.Arg(0))
}

func runIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	out := fs.String("o", "store.mlog", "output store file")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	eng := ingestFile(fs.Arg(0))
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := eng.Save(f); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("ingested %d lines (%.1f MB raw, %.2fx compressed) into %s\n",
		st.Lines, float64(st.RawBytes)/1e6, st.CompressionRatio, *out)
}

func runGrep(args []string) {
	fs := flag.NewFlagSet("grep", flag.ExitOnError)
	pattern := fs.String("e", "", "regular expression (required)")
	store := fs.String("store", "", "query a saved store instead of a log file")
	limit := fs.Int("limit", 20, "matching lines to print (0 = none)")
	_ = fs.Parse(args)
	if *pattern == "" {
		usage()
	}
	eng := engineFor(*store, fs)
	res, err := eng.SearchRegex(*pattern, *limit != 0)
	if err != nil {
		log.Fatal(err)
	}
	for i, l := range res.Lines {
		if i == *limit {
			break
		}
		fmt.Println(l)
	}
	path := fmt.Sprintf("regex full scan (%d pages)", res.CandidatePages)
	if res.Prefiltered {
		path = fmt.Sprintf("regex prefiltered (%d/%d pages skipped)",
			res.TotalPages-res.CandidatePages, res.TotalPages)
	}
	fmt.Printf("-- %d matches | %s | simulated %v | wall %v\n",
		res.Matches, path, res.SimElapsed, res.WallElapsed)
}

func runExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	store := fs.String("store", "", "export a saved store instead of a log file")
	_ = fs.Parse(args)
	eng := engineFor(*store, fs)
	n, err := eng.Export(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "exported %d bytes\n", n)
}

func ingestFile(path string) *mithrilog.Engine {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	eng := mithrilog.Open(mithrilog.Config{})
	if err := eng.IngestReader(f); err != nil {
		log.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}
	return eng
}

func runSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	expr := fs.String("q", "", "query expression (required)")
	noIndex := fs.Bool("noindex", false, "bypass the inverted index (full scan)")
	store := fs.String("store", "", "query a saved store instead of a log file")
	limit := fs.Int("limit", 20, "matching lines to print (0 = none)")
	explain := fs.Bool("explain", false, "print the simulated timing breakdown")
	_ = fs.Parse(args)
	if *expr == "" {
		usage()
	}
	eng := engineFor(*store, fs)
	res, err := eng.Search(*expr, mithrilog.SearchOptions{
		CollectLines: *limit != 0,
		NoIndex:      *noIndex,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *explain {
		b := res.Breakdown
		fmt.Printf("-- explain: index %v | stream %v | filter %v (slower of stream/filter binds) | return %v\n",
			b.Index, b.Stream, b.Filter, b.Return)
	}
	for i, l := range res.Lines {
		if i == *limit {
			break
		}
		fmt.Println(l)
	}
	path := "accelerator"
	if !res.Offloaded {
		path = "software fallback"
	}
	fmt.Printf("-- %d matches | %s | pages %d/%d | simulated %v (%.2f GB/s effective) | wall %v\n",
		res.Matches, path, res.CandidatePages, res.TotalPages,
		res.SimElapsed, res.EffectiveGBps, res.WallElapsed)
}

func runTemplates(args []string) {
	fs := flag.NewFlagSet("templates", flag.ExitOnError)
	top := fs.Int("top", 20, "templates to print")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	var lines []string
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			lines = append(lines, string(data[start:i]))
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, string(data[start:]))
	}
	lib := mithrilog.ExtractTemplates(lines, mithrilog.TemplateParams{
		MaxChildren: 40, MinSupport: 5, MaxDepth: 12,
	})
	tpls := lib.Templates()
	sort.Slice(tpls, func(i, j int) bool { return tpls[i].Support > tpls[j].Support })
	fmt.Printf("%d templates extracted from %d lines\n", lib.Len(), len(lines))
	for i, tpl := range tpls {
		if i == *top {
			break
		}
		desc, err := lib.Describe(tpl.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(desc)
	}
}

func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	store := fs.String("store", "", "inspect a saved store instead of a log file")
	_ = fs.Parse(args)
	eng := engineFor(*store, fs)
	st := eng.Stats()
	fmt.Printf("lines:             %d\n", st.Lines)
	fmt.Printf("raw bytes:         %d (%.1f MB)\n", st.RawBytes, float64(st.RawBytes)/1e6)
	fmt.Printf("compressed bytes:  %d (%.1f MB)\n", st.CompressedBytes, float64(st.CompressedBytes)/1e6)
	fmt.Printf("compression ratio: %.2fx (LZAH)\n", st.CompressionRatio)
	fmt.Printf("data pages:        %d\n", st.DataPages)
	fmt.Printf("index memory:      %.1f KB\n", float64(st.IndexMemoryBytes)/1e3)
}
