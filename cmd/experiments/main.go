// Command experiments regenerates every table and figure of the paper's
// evaluation section (§7) on the synthetic datasets, printing the rows
// EXPERIMENTS.md records. The -lines flag scales the datasets; larger
// values take longer but sharpen the end-to-end comparisons.
//
// Usage:
//
//	experiments [-lines 40000] [-pairs 100] [-octets 16] [-singles 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mithrilog/internal/bench"
)

func main() {
	lines := flag.Int("lines", 40000, "lines per dataset (BGL2 uses 1/5)")
	singles := flag.Int("singles", 40, "single-template queries per dataset")
	pairs := flag.Int("pairs", 100, "random 2-query OR combinations (paper: 100)")
	octets := flag.Int("octets", 16, "random 8-query OR combinations (paper: 16)")
	seed := flag.Int64("seed", 1, "batch sampling seed")
	flag.Parse()

	opts := bench.Options{
		Lines:   *lines,
		Singles: *singles,
		Pairs:   *pairs,
		Octets:  *octets,
		Seed:    *seed,
	}

	out := os.Stdout
	start := time.Now()
	fmt.Fprintf(out, "MithriLog experiment suite (lines=%d singles=%d pairs=%d octets=%d)\n\n",
		*lines, *singles, *pairs, *octets)

	fmt.Fprintln(out, bench.FormatTable1(bench.Table1(opts)))
	fmt.Fprintln(out, bench.FormatTable2(bench.Table2()))
	fmt.Fprintln(out, bench.FormatTable3(bench.Table3()))
	fmt.Fprintln(out, bench.FormatTable4(bench.Table4()))

	t5, err := bench.Table5(opts)
	if err != nil {
		log.Fatalf("table 5: %v", err)
	}
	fmt.Fprintln(out, bench.FormatTable5(t5))

	log.Printf("building workloads (4 datasets, all systems)...")
	ws, err := bench.BuildAll(opts)
	if err != nil {
		log.Fatalf("workloads: %v", err)
	}
	log.Printf("workloads ready after %v", time.Since(start).Round(time.Millisecond))

	t6, err := bench.Table6(ws)
	if err != nil {
		log.Fatalf("table 6: %v", err)
	}
	fmt.Fprintln(out, bench.FormatTable6(t6))

	t7, err := bench.Table7(ws)
	if err != nil {
		log.Fatalf("table 7: %v", err)
	}
	fmt.Fprintln(out, bench.FormatTable7(t7))
	fmt.Fprintln(out, bench.FormatTable8(bench.Table8()))

	fmt.Fprintln(out, bench.FormatFigure13(bench.Figure13(opts)))

	f14, err := bench.Figure14(ws)
	if err != nil {
		log.Fatalf("figure 14: %v", err)
	}
	fmt.Fprintln(out, bench.FormatFigure14(f14))

	f15, err := bench.Figure15(ws)
	if err != nil {
		log.Fatalf("figure 15: %v", err)
	}
	fmt.Fprintln(out, bench.FormatFigure15(f15))

	f16, err := bench.Figure16(ws)
	if err != nil {
		log.Fatalf("figure 16: %v", err)
	}
	fmt.Fprintln(out, bench.FormatFigure16(f16))

	tg, err := bench.ExtensionTagging(ws)
	if err != nil {
		log.Fatalf("tagging extension: %v", err)
	}
	rx, err := bench.ExtensionRegex(ws)
	if err != nil {
		log.Fatalf("regex extension: %v", err)
	}
	fmt.Fprintln(out, bench.FormatExtensions(tg, rx))

	pv, err := bench.ExtensionParsing(opts)
	if err != nil {
		log.Fatalf("parsing extension: %v", err)
	}
	fmt.Fprintln(out, bench.FormatParsing(pv))

	hf, err := bench.AblationHashFilterCount(opts)
	if err != nil {
		log.Fatalf("ablation: %v", err)
	}
	ih, err := bench.AblationIndexHashFunctions(opts)
	if err != nil {
		log.Fatalf("ablation: %v", err)
	}
	il, err := bench.AblationIndexLayout(opts)
	if err != nil {
		log.Fatalf("ablation: %v", err)
	}
	fmt.Fprintln(out, bench.FormatAblations(
		bench.AblationDatapathWidth(opts), hf, ih,
		bench.AblationLZAHNewline(opts), il,
		bench.AblationLZAHTableSize(opts),
		bench.AblationPipelineCount(),
		bench.AblationCuckooCapacity()))

	log.Printf("experiment suite completed in %v", time.Since(start).Round(time.Millisecond))
}
