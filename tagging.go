package mithrilog

import (
	"time"

	"mithrilog/internal/query"
)

// TagResult reports a template-tagging run over the whole store — the
// paper's §8 "tagging each log line with template IDs" extension.
type TagResult struct {
	// Tags holds, per ingested line in order, the template IDs the line
	// matched (nil for untagged lines); populated when collect was set.
	Tags [][]int
	// Counts maps template ID to the number of lines carrying it.
	Counts map[int]uint64
	// MultiTagged and Untagged count lines with >1 and 0 templates.
	MultiTagged, Untagged uint64
	// Lines is the total number of lines scanned.
	Lines uint64
	// Passes is the number of full-data scans (the template library is
	// processed in groups of the accelerator's intersection-set capacity).
	Passes int
	// SimElapsed is the simulated tagging time on the modeled platform.
	SimElapsed time.Duration
	// WallElapsed is the host wall-clock time of the simulation.
	WallElapsed time.Duration
}

// Tag classifies every ingested line against the template library at the
// accelerator's wire speed. Each template's query occupies one
// intersection set; libraries larger than the per-pass capacity (8 sets
// in the prototype) take multiple passes over the data. Set collect to
// materialize per-line template IDs in the result.
func (e *Engine) Tag(lib *TemplateLibrary, collect bool) (TagResult, error) {
	qs := make([]query.Query, 0, lib.lib.Len())
	for i := 0; i < lib.lib.Len(); i++ {
		q, err := lib.lib.Query(i)
		if err != nil {
			return TagResult{}, err
		}
		qs = append(qs, q)
	}
	tagger, err := e.inner.NewTagger(qs)
	if err != nil {
		return TagResult{}, err
	}
	res, err := tagger.Run(collect)
	if err != nil {
		return TagResult{}, err
	}
	return TagResult{
		Tags:        res.Tags,
		Counts:      res.Counts,
		MultiTagged: res.MultiTagged,
		Untagged:    res.Untagged,
		Lines:       res.Lines,
		Passes:      res.Passes,
		SimElapsed:  res.SimElapsed,
		WallElapsed: res.WallElapsed,
	}, nil
}
