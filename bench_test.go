// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§7), plus the design-decision ablations from
// DESIGN.md. Each benchmark regenerates its experiment through
// internal/bench and reports the headline quantities as custom metrics,
// so `go test -bench=. -benchmem` reproduces the whole evaluation.
// cmd/experiments prints the same rows at larger scales.
package mithrilog

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mithrilog/internal/bench"
	"mithrilog/internal/core"
	"mithrilog/internal/loggen"
)

// benchOpts keeps the benchmark suite fast; raise via cmd/experiments for
// sharper numbers.
var benchOpts = bench.Options{Lines: 10000, Singles: 10, Pairs: 8, Octets: 4}

var (
	workloadsOnce sync.Once
	workloads     []*bench.Workload
	workloadsErr  error
)

func sharedWorkloads(b *testing.B) []*bench.Workload {
	b.Helper()
	workloadsOnce.Do(func() {
		workloads, workloadsErr = bench.BuildAll(benchOpts)
	})
	if workloadsErr != nil {
		b.Fatal(workloadsErr)
	}
	return workloads
}

// BenchmarkTable1Datasets regenerates Table 1: dataset sizes and
// extracted template counts.
func BenchmarkTable1Datasets(b *testing.B) {
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table1(benchOpts)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Templates), "templates/"+r.Dataset)
	}
}

// BenchmarkTable2Resources regenerates Table 2: the chip resource model.
func BenchmarkTable2Resources(b *testing.B) {
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table2()
	}
	b.ReportMetric(float64(rows[3].LUTs), "pipeline-LUTs")
	b.ReportMetric(rows[4].LUTPercent, "total-LUT-%")
}

// BenchmarkTable3Platforms regenerates Table 3: platform configurations.
func BenchmarkTable3Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.Table3()
	}
}

// BenchmarkTable4CompressionEfficiency regenerates Table 4: modeled
// GB/s-per-KLUT of hardware compression implementations.
func BenchmarkTable4CompressionEfficiency(b *testing.B) {
	var rows []bench.Table4Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table4()
	}
	for _, r := range rows {
		b.ReportMetric(r.GBpsPerKLUT, "GBps-per-KLUT-"+r.Algorithm)
	}
}

// BenchmarkTable5CompressionRatio regenerates Table 5: measured
// compression ratios of LZAH/LZRW1/LZ4/Gzip on the four datasets.
func BenchmarkTable5CompressionRatio(b *testing.B) {
	var rows []bench.Table5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table5(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		// First dataset (BGL2) ratio as the representative metric.
		b.ReportMetric(r.Ratios[0], "ratio-"+r.Algorithm)
	}
}

// BenchmarkTable6BatchedThroughput regenerates Table 6: average effective
// throughput of 1-/2-/8-query batches, software scan vs MithriLog.
func BenchmarkTable6BatchedThroughput(b *testing.B) {
	ws := sharedWorkloads(b)
	var res bench.Table6Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = bench.Table6(ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		if r.System == "MithriLog" && r.Batch == 8 {
			b.ReportMetric(r.GBps[1], "mithrilog8-GBps-Liberty2")
		}
		if r.System == "MonetDB-like" && r.Batch == 8 {
			b.ReportMetric(r.GBps[1], "software8-GBps-Liberty2")
		}
	}
	b.ReportMetric(res.AvgImprovement[1], "improvement-Liberty2")
}

// BenchmarkTable7SplunkImprovement regenerates Table 7: end-to-end
// improvement over the Splunk-like baseline.
func BenchmarkTable7SplunkImprovement(b *testing.B) {
	ws := sharedWorkloads(b)
	var rows []bench.Table7Row
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table7(ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Improvement, "improvement-"+r.Dataset)
	}
}

// BenchmarkTable8Power regenerates Table 8: the power model.
func BenchmarkTable8Power(b *testing.B) {
	var rows []bench.Table8Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table8()
	}
	b.ReportMetric(rows[3].MithriLog, "mithrilog-watts")
	b.ReportMetric(rows[3].Software, "software-watts")
}

// BenchmarkFigure13UsefulBits regenerates Figure 13: useful bits on the
// tokenized datapath.
func BenchmarkFigure13UsefulBits(b *testing.B) {
	var rows []bench.Figure13Row
	for i := 0; i < b.N; i++ {
		rows = bench.Figure13(benchOpts)
	}
	for _, r := range rows {
		b.ReportMetric(r.UsefulRatio*100, "useful-%-"+r.Dataset)
	}
}

// BenchmarkFigure14FilterThroughput regenerates Figure 14: aggregate
// filter-engine throughput per dataset.
func BenchmarkFigure14FilterThroughput(b *testing.B) {
	ws := sharedWorkloads(b)
	var rows []bench.Figure14Row
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = bench.Figure14(ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.GBps, "GBps-"+r.Dataset)
	}
}

// BenchmarkFigure15Histogram regenerates Figure 15: the effective
// throughput histograms for both systems.
func BenchmarkFigure15Histogram(b *testing.B) {
	ws := sharedWorkloads(b)[:1]
	var rows []bench.Figure15Row
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = bench.Figure15(ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report histogram centroids (bucket index weighted by count).
	for _, r := range rows {
		sum, n := 0.0, 0
		for bi, bk := range r.Buckets {
			sum += float64(bi) * float64(bk.Count)
			n += bk.Count
		}
		b.ReportMetric(sum/float64(n), "centroid-"+r.System)
	}
}

// BenchmarkFigure16Scatter regenerates Figure 16: per-query elapsed time
// on the Splunk-like baseline vs MithriLog.
func BenchmarkFigure16Scatter(b *testing.B) {
	ws := sharedWorkloads(b)[:1]
	var rows []bench.Figure16Row
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = bench.Figure16(ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	var s, m float64
	for _, p := range rows[0].Points {
		s += p.SplunkSeconds
		m += p.MithriLogSeconds
	}
	b.ReportMetric(s*1000, "splunk-total-ms")
	b.ReportMetric(m*1000, "mithrilog-total-ms")
}

// BenchmarkAblationDatapathWidth sweeps the 8/16/32-byte datapath design
// decision (§7.4.1).
func BenchmarkAblationDatapathWidth(b *testing.B) {
	var rows []bench.DatapathRow
	for i := 0; i < b.N; i++ {
		rows = bench.AblationDatapathWidth(benchOpts)
	}
	for _, r := range rows {
		b.ReportMetric(r.EffPerKLUT, "eff-per-KLUT-"+widthName(r.WidthBytes))
	}
}

func widthName(w int) string {
	switch w {
	case 8:
		return "8B"
	case 16:
		return "16B"
	default:
		return "32B"
	}
}

// BenchmarkAblationHashFilterCount compares 1/2/4 hash filters per
// pipeline (§7.4.1's two-filter decision).
func BenchmarkAblationHashFilterCount(b *testing.B) {
	var rows []bench.HashFilterRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.AblationHashFilterCount(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.RelativeThroughput, fmt.Sprintf("rel-throughput-%dfilters", r.Filters))
	}
}

// BenchmarkAblationIndexHashFunctions compares one vs two index hash
// functions (§6.2).
func BenchmarkAblationIndexHashFunctions(b *testing.B) {
	var rows []bench.IndexHashRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.AblationIndexHashFunctions(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].PagesFetched), "pages-1hash")
	b.ReportMetric(float64(rows[1].PagesFetched), "pages-2hash")
}

// BenchmarkAblationLZAHNewline compares LZAH with and without newline
// realignment (§5).
func BenchmarkAblationLZAHNewline(b *testing.B) {
	var rows []bench.LZAHNewlineRow
	for i := 0; i < b.N; i++ {
		rows = bench.AblationLZAHNewline(benchOpts)
	}
	b.ReportMetric(rows[0].Ratios[1], "ratio-aligned-Liberty2")
	b.ReportMetric(rows[1].Ratios[1], "ratio-blind-Liberty2")
}

// BenchmarkAblationIndexLayout compares the 16x16 tree index with naive
// linked lists (§6.1).
func BenchmarkAblationIndexLayout(b *testing.B) {
	var rows []bench.IndexLayoutRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.AblationIndexLayout(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	names := []string{"tree16x16", "list16", "list512"}
	for i, r := range rows {
		b.ReportMetric(r.SimLookupMicros, "lookup-us-"+names[i])
	}
}

// BenchmarkEndToEndSearch measures the library's real (wall-clock)
// ingest+search path at the public API.
func BenchmarkEndToEndSearch(b *testing.B) {
	ws := sharedWorkloads(b)
	w := ws[0]
	q := w.Singles[0]
	b.SetBytes(int64(w.RawBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.MithriLog.Search(q, core.SearchOptions{NoIndex: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentSearch measures what the scheduler layer buys:
// aggregate wall-clock throughput of a query mix issued 8-at-a-time
// against a warm decompressed-page cache, versus the same mix issued
// serially against an uncached engine (the pre-scheduler execution
// model). The "speedup-vs-serial" metric is the headline: cross-query
// page reuse removes the repeated LZAH decompression, and concurrent
// admission overlaps the scans.
func BenchmarkConcurrentSearch(b *testing.B) {
	const inFlight = 8
	ds := loggen.Generate(loggen.Liberty2, 20000, 0)
	exprs := []string{
		`kernel:`, `lustre`, `recovery`, `error`, `daemon`, `session`,
		`kernel: AND error`, `lustre AND NOT recovery`, `daemon OR session`,
		`connection AND refused`, `NOT kernel:`, `heartbeat`,
		`client AND session`, `pbs_mom:`, `status`, `failed OR aborted`,
	}
	queries := make([]Query, len(exprs))
	for i, e := range exprs {
		queries[i] = MustParseQuery(e)
	}
	opts := SearchOptions{NoIndex: true} // full scans isolate the scan path
	run := func(eng *Engine, q Query) {
		if _, err := eng.SearchQuery(q, opts); err != nil {
			b.Fatal(err)
		}
	}
	load := func(eng *Engine) {
		if err := eng.IngestBytes(ds.Lines); err != nil {
			b.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			b.Fatal(err)
		}
	}

	// Serial baseline: no cache, one query at a time.
	serial := Open(Config{})
	load(serial)
	run(serial, queries[0]) // warm allocator paths
	serialStart := time.Now()
	for _, q := range queries {
		run(serial, q)
	}
	serialPerRound := time.Since(serialStart)

	// Concurrent engine: page cache + 8 in-flight; warm the cache with
	// one pass so the measured rounds run from device DRAM.
	conc := Open(Config{CacheBytes: 256 << 20, MaxInFlight: inFlight})
	load(conc)
	run(conc, queries[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs := make(chan Query, len(queries))
		for _, q := range queries {
			jobs <- q
		}
		close(jobs)
		var wg sync.WaitGroup
		for w := 0; w < inFlight; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := range jobs {
					run(conc, q)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	concPerRound := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(serialPerRound)/float64(concPerRound), "speedup-vs-serial")
	b.ReportMetric(float64(len(queries))/concPerRound.Seconds(), "queries/sec")
}

// BenchmarkIngest measures the library's real (wall-clock) ingest path at
// the public API: compress → store → index, including buffered-page
// flushing. The instrumentation layer (internal/obs) is always on, so this
// benchmark bounds its overhead.
func BenchmarkIngest(b *testing.B) {
	lines := make([][]byte, 20000)
	for i := range lines {
		lines[i] = []byte(fmt.Sprintf("R%02d-M0-N%d-C:J%02d-U%02d RAS KERNEL INFO instruction cache parity error corrected %d", i%32, i%8, i%16, i%64, i))
	}
	var raw int64
	for _, l := range lines {
		raw += int64(len(l) + 1)
	}
	b.SetBytes(raw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := Open(Config{})
		if err := eng.IngestBytes(lines); err != nil {
			b.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionTagging runs the §8 wire-speed template tagging
// extension over the shared workloads.
func BenchmarkExtensionTagging(b *testing.B) {
	ws := sharedWorkloads(b)[:1]
	var rows []bench.TaggingRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = bench.ExtensionTagging(ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Passes), "passes")
	b.ReportMetric(rows[0].EffectiveGBps, "GBps-per-pass")
}

// BenchmarkExtensionRegex contrasts the token engine with the software
// regex path (§7.4.3 in system form).
func BenchmarkExtensionRegex(b *testing.B) {
	ws := sharedWorkloads(b)[:1]
	var rows []bench.RegexRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = bench.ExtensionRegex(ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Slowdown, "regex-slowdown")
}

// BenchmarkExtensionParsing evaluates template-extraction quality against
// generation ground truth.
func BenchmarkExtensionParsing(b *testing.B) {
	var rows []bench.ParsingRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.ExtensionParsing(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Dataset == "Liberty2" {
			b.ReportMetric(r.GroupingAccuracy, "GA-"+r.Method)
		}
	}
}
