package mithrilog

import (
	"bytes"
	"testing"

	"mithrilog/internal/baseline/softscan"
	"mithrilog/internal/baseline/splunksim"
	"mithrilog/internal/core"
	"mithrilog/internal/ftree"
	"mithrilog/internal/loggen"
	"mithrilog/internal/storage"
)

// TestCrossEngineAgreement is the repository's consistency keystone: for a
// realistic dataset and its full machine-generated template-query library,
// the accelerated engine (with and without index), the MonetDB-like full
// scanner, the Splunk-like index engine, and the reference matcher must
// all report identical match counts on every query.
func TestCrossEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine sweep is not short")
	}
	ds := loggen.Generate(loggen.Spirit2, 12000, 0)

	eng := core.NewEngine(core.Config{})
	if err := eng.Ingest(ds.Lines); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	soft, err := softscan.Build(storage.New(storage.Config{}), ds.Lines)
	if err != nil {
		t.Fatal(err)
	}
	splunk, err := splunksim.Build(storage.New(storage.Config{}), ds.Lines)
	if err != nil {
		t.Fatal(err)
	}

	lib := ftree.Extract(ds.Lines, ftree.Params{MaxChildren: 40, MinSupport: 5, MaxDepth: 12})
	queries := lib.Queries()
	if len(queries) < 20 {
		t.Fatalf("library too small: %d", len(queries))
	}
	if len(queries) > 60 {
		queries = queries[:60]
	}
	// Add a few hand-written shapes the library does not cover.
	for _, expr := range []string{
		`NOT kernel:`,
		`(lustre AND recovery) OR (heartbeat AND missed)`,
		`error AND NOT ERROR`,
	} {
		q, err := ParseQuery(expr)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q.q)
	}

	for qi, q := range queries {
		want := 0
		for _, l := range ds.Lines {
			if q.Match(string(l)) {
				want++
			}
		}
		accel, err := eng.Search(q, core.SearchOptions{})
		if err != nil {
			t.Fatalf("query %d (%s): %v", qi, q, err)
		}
		if accel.Matches != want {
			t.Errorf("query %d: accelerator(index) %d != reference %d (%s)", qi, accel.Matches, want, q)
		}
		scan, err := eng.Search(q, core.SearchOptions{NoIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		if scan.Matches != want {
			t.Errorf("query %d: accelerator(scan) %d != reference %d", qi, scan.Matches, want)
		}
		sres, err := soft.Scan(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sres.Matches != want {
			t.Errorf("query %d: softscan %d != reference %d", qi, sres.Matches, want)
		}
		spres, err := splunk.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if spres.Matches != want {
			t.Errorf("query %d: splunksim %d != reference %d", qi, spres.Matches, want)
		}
	}
}

// TestPersistenceAcrossFacade exercises Save/Load through the public API
// with a follow-up template workflow on the loaded engine.
func TestPersistenceAcrossFacade(t *testing.T) {
	lines := sampleLines(2500)
	eng := Open(Config{})
	if err := eng.IngestLines(lines); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Search(`parity AND error`, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Search(`parity AND error`, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Matches != b.Matches {
		t.Fatalf("matches diverged across save/load: %d vs %d", a.Matches, b.Matches)
	}
	// Template tagging must work on the loaded engine.
	lib := ExtractTemplates(lines, TemplateParams{MaxChildren: 40, MinSupport: 10, MaxDepth: 10})
	res, err := loaded.Tag(lib, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != uint64(len(lines)) {
		t.Fatalf("tagging after load: %d lines", res.Lines)
	}
}
