package mithrilog

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"mithrilog/internal/loggen"
)

// This file is the multi-shard differential oracle: a 1-shard and an
// N-shard deployment fed the same lines must answer every query with
// byte-identical merged results. Placement (tenant hashing, round-robin
// striping) decides only where a line lives, never what it says, so any
// divergence is a router merge bug, a placement data-loss bug, or a
// per-shard engine bug amplified by the split.

// shardOracleQueries runs the seeded random-query sweep from the main
// differential oracle against both deployments and demands identical
// match counts and identical sorted line sets on the indexed and
// no-index paths.
func shardOracleQueries(t *testing.T, single, sharded *Engine, ds *loggen.Dataset, seed int64, queries int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vocab := tokenVocabulary(ds.Lines, rng)
	for qi := 0; qi < queries; qi++ {
		q := randomQuery(rng, vocab)
		for _, noIndex := range []bool{false, true} {
			opts := SearchOptions{CollectLines: true, NoIndex: noIndex}
			want, err := single.SearchQuery(Query{q: q}, opts)
			if err != nil {
				t.Fatalf("query %d (%s) noindex=%v: single: %v", qi, q, noIndex, err)
			}
			got, err := sharded.SearchQuery(Query{q: q}, opts)
			if err != nil {
				t.Fatalf("query %d (%s) noindex=%v: sharded: %v", qi, q, noIndex, err)
			}
			if got.Partial || len(got.FailedShards) > 0 {
				t.Fatalf("query %d (%s): unexpected partial result: %+v", qi, q, got.FailedShards)
			}
			if got.Matches != want.Matches {
				t.Errorf("query %d (%s) noindex=%v: sharded %d matches, single %d",
					qi, q, noIndex, got.Matches, want.Matches)
				continue
			}
			ws, gs := sortedStrings(want.Lines), sortedStrings(got.Lines)
			if !equalLines(gs, ws) {
				t.Errorf("query %d (%s) noindex=%v: line sets diverge (first diff: %s)",
					qi, q, noIndex, firstDiff(gs, ws))
			}
		}
	}
}

// TestShardedDifferentialOracle ingests each dataset profile untenanted
// into a 1-shard and a 4-shard engine (round-robin striping splits every
// dataset across all four) and sweeps seeded random queries. 4 profiles
// x 30 queries x 2 paths.
func TestShardedDifferentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not short")
	}
	lines := map[string]int{
		"BGL2": 2000, "Liberty2": 2500, "Spirit2": 2500, "Thunderbird": 2500,
	}
	for _, p := range loggen.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ds := loggen.Generate(p, lines[p.Name], 0)
			single := Open(Config{})
			sharded := Open(Config{Shards: 4})
			for _, e := range []*Engine{single, sharded} {
				if err := e.IngestBytes(ds.Lines); err != nil {
					t.Fatal(err)
				}
				if err := e.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			if st := sharded.Stats(); st.Lines != single.Stats().Lines {
				t.Fatalf("sharded fleet holds %d lines, single %d", st.Lines, single.Stats().Lines)
			}
			shardOracleQueries(t, single, sharded, ds, 0x5A4D^p.Seed, 30)
		})
	}
}

// TestShardedOracleSealStraddling interleaves ingest with segment seals
// (WriteSegments seals the active segment on every shard), so the
// dataset straddles sealed/active segment boundaries differently on
// every shard. Results must still match the single engine exactly.
func TestShardedOracleSealStraddling(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2400, 7)
	single := Open(Config{})
	sharded := Open(Config{Shards: 4})
	for _, e := range []*Engine{single, sharded} {
		for off := 0; off < len(ds.Lines); off += 400 {
			if err := e.IngestBytes(ds.Lines[off : off+400]); err != nil {
				t.Fatal(err)
			}
			// Seal mid-stream: later lines land in fresh segments.
			if err := e.WriteSegments(io.Discard); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if st := sharded.Stats(); st.SealedSegments == 0 {
		t.Fatal("seal straddling test sealed no segments")
	}
	shardOracleQueries(t, single, sharded, ds, 0xBEEF, 20)
}

// TestShardedOracleTenantSkew places every line under one tenant — the
// worst skew: one shard holds everything, the rest are empty. Scatter
// queries must report the empty shards without failing, and both the
// scatter and the tenant-routed query must match the single engine.
func TestShardedOracleTenantSkew(t *testing.T) {
	ds := loggen.Generate(loggen.Liberty2, 1500, 11)
	single := Open(Config{})
	sharded := Open(Config{Shards: 4})
	if err := single.IngestBytes(ds.Lines); err != nil {
		t.Fatal(err)
	}
	if err := sharded.IngestTenant("heavy-hitter", ds.Lines); err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Engine{single, sharded} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Untenanted scatter: three shards are empty, none of that is failure.
	res, err := sharded.Search("error OR warning OR fatal", SearchOptions{CollectLines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsQueried != 4 || res.EmptyShards != 3 {
		t.Fatalf("scatter over skewed fleet: queried %d, empty %d; want 4, 3",
			res.ShardsQueried, res.EmptyShards)
	}
	if res.Partial {
		t.Fatal("empty shards must not mark the result partial")
	}

	// Tenant-routed query touches exactly the home shard and answers
	// identically to the untenanted scatter (all data is that tenant's).
	routed, err := sharded.Search("error OR warning OR fatal",
		SearchOptions{CollectLines: true, Tenant: "heavy-hitter"})
	if err != nil {
		t.Fatal(err)
	}
	if routed.ShardsQueried != 1 {
		t.Fatalf("tenant query scattered to %d shards", routed.ShardsQueried)
	}
	if routed.Matches != res.Matches || !equalLines(sortedStrings(routed.Lines), sortedStrings(res.Lines)) {
		t.Fatal("tenant-routed result diverges from the scatter over the same data")
	}

	shardOracleQueries(t, single, sharded, ds, 0xCAFE, 20)
}

// TestShardedOracleSingleShardAnswer spreads tenants over the fleet and
// asks a query only one tenant's lines can satisfy: the scatter must
// visit every shard yet return exactly the lines the single engine
// finds, proving the merge neither loses nor duplicates when all
// matches come from one shard.
func TestShardedOracleSingleShardAnswer(t *testing.T) {
	single := Open(Config{})
	sharded := Open(Config{Shards: 4})
	tenants := []string{"alpha", "bravo", "charlie", "delta"}
	for ti, tenant := range tenants {
		var lines [][]byte
		for i := 0; i < 200; i++ {
			lines = append(lines, []byte(fmt.Sprintf("%s svc=%d request handled in %dms", tenant, ti, i%97)))
		}
		if err := single.IngestBytes(lines); err != nil {
			t.Fatal(err)
		}
		if err := sharded.IngestTenant(tenant, lines); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []*Engine{single, sharded} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	want, err := single.Search("charlie AND handled", SearchOptions{CollectLines: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Search("charlie AND handled", SearchOptions{CollectLines: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.ShardsQueried != 4 {
		t.Fatalf("untenanted query must scatter to all 4 shards, got %d", got.ShardsQueried)
	}
	if got.Matches != want.Matches || got.Matches != 200 {
		t.Fatalf("sharded %d matches, single %d, want 200", got.Matches, want.Matches)
	}
	if !equalLines(sortedStrings(got.Lines), sortedStrings(want.Lines)) {
		t.Fatal("single-shard-answer line sets diverge")
	}
}

// TestShardedEmptyFleet checks the all-empty boundary: a query against a
// fleet that never ingested is ErrNothingIngested, same as a fresh
// single engine, not a partial result or a shard error.
func TestShardedEmptyFleet(t *testing.T) {
	sharded := Open(Config{Shards: 3})
	_, err := sharded.Search("anything", SearchOptions{})
	if err == nil {
		t.Fatal("query on an empty fleet must fail")
	}
	single := Open(Config{})
	_, serr := single.Search("anything", SearchOptions{})
	if !errors.Is(err, serr) && err.Error() != serr.Error() {
		t.Fatalf("empty-fleet error %q diverges from single-engine %q", err, serr)
	}
}

// TestFleetReopenOracle is the crash/reopen oracle at fleet scope: after
// sealing and reopening, no accepted line may be lost and every query
// must answer byte-identically. The stream carries the shard count, so
// a Reopen with a different cfg.Shards still restores the original
// placement.
func TestFleetReopenOracle(t *testing.T) {
	ds := loggen.Generate(loggen.Spirit2, 1800, 3)
	orig := Open(Config{Shards: 3})
	// Mixed tenancy: striped bulk plus two tenants with private streams.
	if err := orig.IngestBytes(ds.Lines[:1200]); err != nil {
		t.Fatal(err)
	}
	if err := orig.IngestTenant("acme", ds.Lines[1200:1500]); err != nil {
		t.Fatal(err)
	}
	if err := orig.IngestTenant("globex", ds.Lines[1500:]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.WriteSegments(&buf); err != nil {
		t.Fatal(err)
	}
	// cfg.Shards deliberately disagrees: the stream must win.
	re, err := Reopen(Config{Shards: 8}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if re.Shards() != 3 {
		t.Fatalf("reopened fleet has %d shards, stream recorded 3", re.Shards())
	}
	if got, want := re.Stats().Lines, orig.Stats().Lines; got != want {
		t.Fatalf("reopen lost lines: %d of %d", got, want)
	}

	for _, expr := range []string{
		"error", "error AND NOT fatal", "warning OR info", "nonexistent-token-xyz",
	} {
		for _, tenant := range []string{"", "acme", "globex"} {
			opts := SearchOptions{CollectLines: true, Tenant: tenant}
			want, werr := orig.Search(expr, opts)
			got, gerr := re.Search(expr, opts)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%q tenant=%q: error divergence: %v vs %v", expr, tenant, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if got.Matches != want.Matches {
				t.Errorf("%q tenant=%q: reopened %d matches, original %d",
					expr, tenant, got.Matches, want.Matches)
				continue
			}
			if !equalLines(sortedStrings(got.Lines), sortedStrings(want.Lines)) {
				t.Errorf("%q tenant=%q: reopened line set diverges (first diff: %s)",
					expr, tenant, firstDiff(sortedStrings(got.Lines), sortedStrings(want.Lines)))
			}
		}
	}

	// Corrupting any byte region of the fleet stream must be detected,
	// never panic, never serve bad lines.
	for _, pos := range []int{4, 20, buf.Len() / 2, buf.Len() - 9} {
		mut := append([]byte(nil), buf.Bytes()...)
		mut[pos] ^= 0x40
		if _, err := Reopen(Config{}, bytes.NewReader(mut)); err == nil {
			t.Errorf("corruption at byte %d went undetected", pos)
		}
	}
}

// TestSingleEngineReopen checks the facade Reopen path for an unsharded
// stream: the magic peek must fall through to the single-engine reopen.
func TestSingleEngineReopen(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 900, 5)
	orig := Open(Config{})
	if err := orig.IngestBytes(ds.Lines); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteSegments(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := Reopen(Config{}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if re.Shards() != 1 {
		t.Fatalf("single stream reopened as %d shards", re.Shards())
	}
	want, err := orig.Search("error", SearchOptions{CollectLines: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Search("error", SearchOptions{CollectLines: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Matches != want.Matches || !equalLines(sortedStrings(got.Lines), sortedStrings(want.Lines)) {
		t.Fatal("single-engine reopen diverges")
	}
	// A fleet config cannot reopen a single-engine stream.
	if _, err := Reopen(Config{Shards: 4}, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("sharded Reopen of a single-engine stream must fail")
	}
}

// TestShardedPersistGuards pins the unsupported-operation contract:
// sharded engines refuse gob Save/Load/Export with ErrSharded.
func TestShardedPersistGuards(t *testing.T) {
	e := Open(Config{Shards: 2})
	if err := e.Save(io.Discard); !errors.Is(err, ErrSharded) {
		t.Fatalf("Save on sharded engine: %v, want ErrSharded", err)
	}
	if _, err := e.Export(io.Discard); !errors.Is(err, ErrSharded) {
		t.Fatalf("Export on sharded engine: %v, want ErrSharded", err)
	}
	if _, err := Load(Config{Shards: 2}, bytes.NewReader(nil)); !errors.Is(err, ErrSharded) {
		t.Fatalf("Load with Shards: %v, want ErrSharded", err)
	}
}
