package mithrilog

import (
	"fmt"

	"mithrilog/internal/analytics"
)

// AnomalyOptions tune template-based anomaly detection over tagged lines.
type AnomalyOptions struct {
	// WindowLines is the number of lines per analysis window (default 1000).
	WindowLines int
	// Components is the PCA subspace dimension (default 3).
	Components int
	// Quantile is the detection threshold quantile in (0,1) (default 0.98).
	Quantile float64
	// TFIDF applies the inverse-document-frequency weighting of Xu et
	// al. before fitting (default true via zero value — set SkipTFIDF to
	// disable).
	SkipTFIDF bool
}

func (o AnomalyOptions) withDefaults() AnomalyOptions {
	if o.WindowLines <= 0 {
		o.WindowLines = 1000
	}
	if o.Components <= 0 {
		o.Components = 3
	}
	if o.Quantile <= 0 || o.Quantile >= 1 {
		o.Quantile = 0.98
	}
	return o
}

// Anomaly is a flagged analysis window.
type Anomaly struct {
	// Window index (window w covers lines [w*WindowLines, (w+1)*WindowLines)).
	Window int
	// FirstLine and LastLine bound the window in ingested line numbers.
	FirstLine, LastLine int
	// SPE and T2 are the PCA detection statistics; Score ranks anomalies.
	SPE, T2, Score float64
}

// DetectAnomalies runs the paper's envisioned downstream pipeline (§1,
// §8): tag every line with its template (wire-speed filter passes), build
// the window×template count matrix, and flag windows whose template mix
// is anomalous under PCA subspace analysis [79]. It returns the flagged
// windows ranked by severity.
func (e *Engine) DetectAnomalies(lib *TemplateLibrary, opts AnomalyOptions) ([]Anomaly, error) {
	opts = opts.withDefaults()
	tag, err := e.Tag(lib, true)
	if err != nil {
		return nil, err
	}
	if tag.Lines == 0 {
		return nil, fmt.Errorf("mithrilog: no lines to analyze")
	}
	m, err := analytics.BuildCountMatrix(tag.Tags, lib.Len(), opts.WindowLines)
	if err != nil {
		return nil, err
	}
	if !opts.SkipTFIDF {
		m = m.TFIDF()
	}
	raw, err := analytics.DetectAnomalies(m, opts.Components, opts.Quantile)
	if err != nil {
		return nil, err
	}
	out := make([]Anomaly, 0, len(raw))
	for _, a := range raw {
		first := a.Window * opts.WindowLines
		last := first + opts.WindowLines - 1
		if last >= int(tag.Lines) {
			last = int(tag.Lines) - 1
		}
		out = append(out, Anomaly{
			Window:    a.Window,
			FirstLine: first,
			LastLine:  last,
			SPE:       a.SPE,
			T2:        a.T2,
			Score:     a.Score,
		})
	}
	return out, nil
}

// Spike is a flagged per-template rate anomaly: one template's count in
// one window jumped far above its EWMA forecast.
type Spike struct {
	// Window index and the bounding ingested line numbers.
	Window              int
	FirstLine, LastLine int
	// Template that burst.
	Template int
	// Count observed vs the EWMA Forecast; Sigmas is the deviation in
	// EWMA standard deviations.
	Count, Forecast, Sigmas float64
}

// DetectSpikes runs a per-template EWMA rate monitor over tagged windows,
// localizing which template burst and when — the drill-down companion to
// DetectAnomalies' whole-mix view.
func (e *Engine) DetectSpikes(lib *TemplateLibrary, windowLines int) ([]Spike, error) {
	if windowLines <= 0 {
		windowLines = 1000
	}
	tag, err := e.Tag(lib, true)
	if err != nil {
		return nil, err
	}
	m, err := analytics.BuildCountMatrix(tag.Tags, lib.Len(), windowLines)
	if err != nil {
		return nil, err
	}
	raw, err := analytics.DetectSpikes(m, analytics.SpikeParams{})
	if err != nil {
		return nil, err
	}
	out := make([]Spike, 0, len(raw))
	for _, s := range raw {
		first := s.Window * windowLines
		last := first + windowLines - 1
		if last >= int(tag.Lines) {
			last = int(tag.Lines) - 1
		}
		out = append(out, Spike{
			Window: s.Window, FirstLine: first, LastLine: last,
			Template: s.Template, Count: s.Count, Forecast: s.Forecast, Sigmas: s.Sigmas,
		})
	}
	return out, nil
}

// ClusterWindows groups analysis windows by template mix with k-means
// [36]: windows in the same cluster exhibit the same system behaviour.
// It returns the per-window cluster assignment.
func (e *Engine) ClusterWindows(lib *TemplateLibrary, windowLines, k int) ([]int, error) {
	if windowLines <= 0 {
		windowLines = 1000
	}
	tag, err := e.Tag(lib, true)
	if err != nil {
		return nil, err
	}
	m, err := analytics.BuildCountMatrix(tag.Tags, lib.Len(), windowLines)
	if err != nil {
		return nil, err
	}
	res, err := analytics.KMeans(m.NormalizeRows(), k, 1)
	if err != nil {
		return nil, err
	}
	return res.Assignments, nil
}
